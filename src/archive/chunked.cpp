#include "archive/chunked.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <optional>

#include "common/bufpool.h"
#include "common/crc32.h"
#include "core/codec.h"
#include "parallel/chunk_scheduler.h"

namespace szsec::archive {

namespace {

using core::codec::CodecRuntime;
using core::codec::RuntimeCache;
using parallel::ChunkSchedulerConfig;
using parallel::ParallelChunkScheduler;
using parallel::SlabConfig;
using parallel::SlabPlan;

/// Scratch state owned by one pool worker: key-schedule cache plus
/// inflate buffers, reused chunk after chunk without cross-worker locks.
struct WorkerState {
  explicit WorkerState(BytesView key) : runtimes(key) {}
  RuntimeCache runtimes;
  BufferPool scratch;
};

std::vector<std::unique_ptr<WorkerState>> make_worker_states(
    size_t count, BytesView key) {
  std::vector<std::unique_ptr<WorkerState>> states;
  states.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    states.push_back(std::make_unique<WorkerState>(key));
  }
  return states;
}

constexpr uint64_t kMaxExtent = uint64_t{1} << 40;
constexpr size_t kMarkerSize = sizeof(uint64_t);

template <typename T>
constexpr sz::DType dtype_of() {
  return std::is_same_v<T, float> ? sz::DType::kFloat32
                                  : sz::DType::kFloat64;
}

Bytes make_frame(uint64_t chunk_id, uint64_t row_start, uint64_t row_extent,
                 const Bytes& container) {
  ByteWriter w(container.size() + 32);
  w.put_u64(kResyncMarker);
  w.put_varint(chunk_id);
  w.put_varint(row_start);
  w.put_varint(row_extent);
  w.put_varint(container.size());
  w.put_u32(crc32(BytesView(container)));
  w.put_bytes(BytesView(container));
  return w.take();
}

/// The strict/salvage/verify code below predates the public FrameInfo
/// name; keep the short internal aliases.
using Frame = FrameInfo;

std::optional<Frame> parse_frame_at(BytesView archive, size_t pos) {
  return parse_frame(archive, pos);
}

/// Finds the next resync marker at or after `pos` (byte-wise search).
size_t find_marker(BytesView archive, size_t pos) {
  uint8_t pattern[kMarkerSize];
  std::memcpy(pattern, &kResyncMarker, kMarkerSize);
  while (pos + kMarkerSize <= archive.size()) {
    const auto* hit = static_cast<const uint8_t*>(
        std::memchr(archive.data() + pos, pattern[0], archive.size() - pos));
    if (hit == nullptr) break;
    pos = static_cast<size_t>(hit - archive.data());
    if (pos + kMarkerSize > archive.size()) break;
    if (std::memcmp(archive.data() + pos, pattern, kMarkerSize) == 0) {
      return pos;
    }
    ++pos;
  }
  return archive.size();
}

Dims dims_from_extents(const size_t* extents, size_t rank) {
  switch (rank) {
    case 1:
      return Dims{extents[0]};
    case 2:
      return Dims{extents[0], extents[1]};
    case 3:
      return Dims{extents[0], extents[1], extents[2]};
    default:
      return Dims{extents[0], extents[1], extents[2], extents[3]};
  }
}

/// Decodes one chunk container through the shared codec path and
/// validates it against the frame's row claim (and the field's plane
/// dims when already known).  When `into` is non-empty the chunk is
/// reconstructed directly into it (the strict decoder passes its slice
/// of the output field); otherwise `own` is resized and filled.
/// Returns the failure reason, or empty on success.  When the failure
/// was cryptographic (MAC mismatch, cipher rejection) `*crypto_failure`
/// is set, so strict callers can surface a CryptoError instead of a
/// generic CorruptError — a wrong tenant key and flipped archive bytes
/// are different operator problems.
template <typename T>
std::string try_decode_chunk(const Frame& f, RuntimeCache& runtimes,
                             BufferPool* pool,
                             const std::optional<Dims>& field_dims,
                             std::span<T> into, std::vector<T>* own,
                             Dims& chunk_dims,
                             PipelineMetrics* times = nullptr,
                             bool* crypto_failure = nullptr) {
  try {
    const core::Header h = core::peek_header(f.container);
    if (h.dims[0] != f.row_extent) return "container rows != frame rows";
    if (field_dims) {
      if (h.dims.rank() != field_dims->rank()) return "rank mismatch";
      for (size_t i = 1; i < h.dims.rank(); ++i) {
        if (h.dims[i] != (*field_dims)[i]) return "plane dims mismatch";
      }
    }
    if (h.dtype != dtype_of<T>()) return "container dtype mismatch";
    core::CipherSpec spec{h.cipher_kind, h.cipher_mode};
    spec.authenticate = (h.flags & core::kFlagAuthenticated) != 0;
    const CodecRuntime& runtime = runtimes.get(h.params, h.scheme, spec);
    std::span<T> dst = into;
    if (dst.empty()) {
      own->resize(h.dims.count());
      dst = std::span<T>(*own);
    }
    if (dst.size() != h.dims.count()) return "decoded size mismatch";
    core::codec::DecodeOptions opts;
    opts.pool = pool;
    if constexpr (std::is_same_v<T, float>) {
      opts.into_f32 = dst;
    } else {
      opts.into_f64 = dst;
    }
    const core::DecompressResult r =
        core::codec::decode_payload(runtime.config(), f.container, opts);
    if (times != nullptr) times->merge(r.times);
    chunk_dims = h.dims;
    return {};
  } catch (const CryptoError& e) {
    if (crypto_failure != nullptr) *crypto_failure = true;
    return e.what();
  } catch (const Error& e) {
    return e.what();
  }
}

}  // namespace

std::optional<FrameInfo> parse_frame(BytesView archive, size_t pos) {
  // subspan(pos) with pos past the end is UB, and callers hand us
  // offsets derived from untrusted index varints — bound it here so
  // every parse site is safe by construction.
  if (pos > archive.size()) return std::nullopt;
  try {
    ByteReader r(archive.subspan(pos));
    if (r.get_u64() != kResyncMarker) return std::nullopt;
    FrameInfo f;
    f.offset = pos;
    f.chunk_id = r.get_varint();
    f.row_start = r.get_varint();
    f.row_extent = r.get_varint();
    if (f.chunk_id > kMaxExtent || f.row_start > kMaxExtent ||
        f.row_extent == 0 || f.row_extent > kMaxExtent) {
      return std::nullopt;
    }
    const uint64_t len = r.get_varint();
    if (r.remaining() < sizeof(uint32_t) ||
        len > r.remaining() - sizeof(uint32_t)) {
      return std::nullopt;
    }
    const uint32_t crc = r.get_u32();
    f.container = r.get_bytes(static_cast<size_t>(len));
    f.frame_len = r.pos();
    f.crc_ok = crc32(f.container) == crc;
    return f;
  } catch (const Error&) {
    return std::nullopt;
  }
}

const char* to_string(ChunkStatus s) {
  switch (s) {
    case ChunkStatus::kOk:
      return "ok";
    case ChunkStatus::kRelocated:
      return "relocated";
    case ChunkStatus::kCorrupt:
      return "corrupt";
    default:
      return "missing";
  }
}

namespace {

/// The one v3 compressor: pulls raw element bytes from `in` chunk by
/// chunk (on the calling thread, in index order), encodes chunks on the
/// pool, stages committed frames in a FrameSpool, then emits prelude +
/// frames to `out`.  Peak memory is the scheduler window times one
/// chunk's input + frame — never the whole field or archive.  The
/// in-memory compress_chunked wrappers call this with a MemorySource/
/// MemorySink, so "streamed bytes == in-memory bytes" holds by
/// construction (and is additionally pinned by the proptest oracle).
template <typename T>
ChunkedStreamResult compress_stream_impl(ByteSource& in, ByteSink& out,
                                         const Dims& dims,
                                         const sz::Params& params,
                                         core::Scheme scheme, BytesView key,
                                         const core::CipherSpec& spec,
                                         const ChunkedConfig& config,
                                         crypto::CtrDrbg* seed_drbg) {
  ParallelChunkScheduler sched(
      ChunkSchedulerConfig{config.threads, config.max_in_flight});
  SlabConfig scfg;
  scfg.threads = config.threads;
  scfg.slabs = config.chunks;
  const SlabPlan plan =
      parallel::plan_slabs(dims, scfg, sched.thread_count());

  // Per-chunk DRBGs are derived serially from the master BEFORE fan-out,
  // so chunk i's IV depends only on its index and the seed — the archive
  // bytes are identical for every thread count.
  crypto::CtrDrbg& master =
      seed_drbg != nullptr ? *seed_drbg : crypto::global_drbg();
  std::vector<crypto::CtrDrbg> drbgs;
  drbgs.reserve(plan.count);
  for (size_t i = 0; i < plan.count; ++i) {
    drbgs.emplace_back(BytesView(master.generate(32)));
  }

  // One runtime (key schedule + MAC key) shared by every chunk; the
  // codec config is immutable, so workers share it freely.
  const CodecRuntime runtime(params, scheme, key, spec);
  const core::codec::CodecConfig cfg = runtime.config();

  // Raw chunk buffers are recycled through a pool: the feed (calling
  // thread) acquires, the worker releases after encoding, so steady
  // state allocates nothing per chunk however many chunks stream by.
  FrameSpool spool(config.spool);
  BufferPool input_pool;

  struct ChunkInput {
    Bytes raw;
  };
  struct ChunkProduct {
    Bytes frame;
    core::CompressStats stats;
    PipelineMetrics times;
  };

  ChunkedStreamResult out_r;
  out_r.chunk_count = plan.count;
  std::vector<uint64_t> frame_len(plan.count, 0);
  double weighted_predictable = 0;

  sched.run_ordered_fed<ChunkInput, ChunkProduct>(
      plan.count,
      [&](size_t i) {
        const size_t bytes = plan.extent[i] * plan.plane * sizeof(T);
        ChunkInput ci{input_pool.acquire(bytes)};
        ci.raw.resize(bytes);
        const size_t got = read_full(in, std::span<uint8_t>(ci.raw));
        if (got != bytes) {
          throw IoError("input stream ended mid-field (chunk " +
                        std::to_string(i) + ")");
        }
        return ci;
      },
      [&](size_t, size_t i, ChunkInput&& ci) {
        const std::span<const T> slab(
            reinterpret_cast<const T*>(ci.raw.data()),
            ci.raw.size() / sizeof(T));
        core::CompressResult r = core::codec::encode_payload(
            cfg, slab, parallel::slab_dims(dims, plan.extent[i]),
            &drbgs[i]);
        ChunkProduct p{
            make_frame(i, plan.start[i], plan.extent[i], r.container),
            r.stats, std::move(r.times)};
        input_pool.release(std::move(ci.raw));
        return p;
      },
      [&](size_t i, ChunkProduct&& p) {
        frame_len[i] = p.frame.size();
        spool.write(BytesView(p.frame));
        out_r.stats.raw_bytes += p.stats.raw_bytes;
        out_r.stats.payload_bytes += p.stats.payload_bytes;
        out_r.stats.tree_bytes += p.stats.tree_bytes;
        out_r.stats.codeword_bytes += p.stats.codeword_bytes;
        out_r.stats.unpredictable_bytes += p.stats.unpredictable_bytes;
        out_r.stats.unpredictable_count += p.stats.unpredictable_count;
        out_r.stats.element_count += p.stats.element_count;
        out_r.stats.encrypted_bytes += p.stats.encrypted_bytes;
        weighted_predictable +=
            p.stats.predictable_fraction * p.stats.element_count;
        out_r.times.merge(p.times);
      });

  out_r.stats.predictable_fraction =
      out_r.stats.element_count == 0
          ? 0
          : weighted_predictable / out_r.stats.element_count;

  ByteWriter w;
  w.put_u32(kChunkedMagic);
  w.put_u8(kChunkedVersion);
  w.put_u8(static_cast<uint8_t>(dims.rank()));
  for (size_t i = 0; i < dims.rank(); ++i) w.put_varint(dims[i]);
  w.put_varint(plan.count);
  uint64_t rel = 0;
  for (size_t i = 0; i < plan.count; ++i) {
    w.put_varint(rel);
    w.put_varint(frame_len[i]);
    w.put_varint(plan.start[i]);
    w.put_varint(plan.extent[i]);
    rel += frame_len[i];
  }
  w.put_u32(crc32(BytesView(w.bytes())));

  CountingSink counted(&out);
  const Bytes prelude = w.take();
  counted.write(BytesView(prelude));
  spool.replay(counted);
  if (config.seek_table) {
    // Footer offsets are ABSOLUTE (prelude + relative frame offset), so
    // a seekable reader needs no prelude parse at all; elem ranges are
    // redundant with rows x plane by construction — the parser
    // cross-checks them, which is what makes a forged footer detectable.
    const size_t plane = dims.count() / dims[0];
    ByteWriter fw;
    fw.put_u32(kSeekFooterMagic);
    fw.put_u8(kSeekFooterVersion);
    fw.put_u8(dtype_of<T>() == sz::DType::kFloat32 ? 0 : 1);
    fw.put_u8(static_cast<uint8_t>(dims.rank()));
    for (size_t i = 0; i < dims.rank(); ++i) fw.put_varint(dims[i]);
    fw.put_varint(plan.count);
    uint64_t abs = prelude.size();
    for (size_t i = 0; i < plan.count; ++i) {
      fw.put_varint(abs);
      fw.put_varint(frame_len[i]);
      fw.put_varint(plan.start[i]);
      fw.put_varint(plan.extent[i]);
      fw.put_varint(plan.start[i] * plane);
      fw.put_varint(plan.extent[i] * plane);
      abs += frame_len[i];
    }
    fw.put_u32(crc32(BytesView(fw.bytes())));
    const size_t footer_len = fw.bytes().size();
    SZSEC_REQUIRE(footer_len <= std::numeric_limits<uint32_t>::max(),
                  "seek-table footer too large");
    fw.put_u32(static_cast<uint32_t>(footer_len));
    fw.put_u32(kSeekTrailerMagic);
    const Bytes footer = fw.take();
    counted.write(BytesView(footer));
  }
  out.flush();
  out_r.archive_bytes = counted.count();
  out_r.stats.container_bytes = counted.count();
  return out_r;
}

template <typename T>
ChunkedCompressResult compress_chunked_impl(std::span<const T> data,
                                            const Dims& dims,
                                            const sz::Params& params,
                                            core::Scheme scheme,
                                            BytesView key,
                                            const core::CipherSpec& spec,
                                            const ChunkedConfig& config,
                                            crypto::CtrDrbg* seed_drbg) {
  SZSEC_REQUIRE(data.size() == dims.count(), "data size mismatch");
  MemorySource src(BytesView(reinterpret_cast<const uint8_t*>(data.data()),
                             data.size() * sizeof(T)));
  MemorySink sink;
  ChunkedConfig mem_config = config;
  mem_config.spool = FrameSpool::Backing::kMemory;
  ChunkedStreamResult r = compress_stream_impl<T>(
      src, sink, dims, params, scheme, key, spec, mem_config, seed_drbg);
  ChunkedCompressResult out;
  out.archive = sink.take();
  out.chunk_count = r.chunk_count;
  out.stats = r.stats;
  out.times = std::move(r.times);
  return out;
}

}  // namespace

ChunkedStreamResult compress_chunked_stream(
    ByteSource& in, ByteSink& out, sz::DType dtype, const Dims& dims,
    const sz::Params& params, core::Scheme scheme, BytesView key,
    const core::CipherSpec& spec, const ChunkedConfig& config,
    crypto::CtrDrbg* seed_drbg) {
  return dtype == sz::DType::kFloat32
             ? compress_stream_impl<float>(in, out, dims, params, scheme,
                                           key, spec, config, seed_drbg)
             : compress_stream_impl<double>(in, out, dims, params, scheme,
                                            key, spec, config, seed_drbg);
}

ChunkedCompressResult compress_chunked(std::span<const float> data,
                                       const Dims& dims,
                                       const sz::Params& params,
                                       core::Scheme scheme, BytesView key,
                                       const core::CipherSpec& spec,
                                       const ChunkedConfig& config,
                                       crypto::CtrDrbg* seed_drbg) {
  return compress_chunked_impl(data, dims, params, scheme, key, spec,
                               config, seed_drbg);
}

ChunkedCompressResult compress_chunked(std::span<const double> data,
                                       const Dims& dims,
                                       const sz::Params& params,
                                       core::Scheme scheme, BytesView key,
                                       const core::CipherSpec& spec,
                                       const ChunkedConfig& config,
                                       crypto::CtrDrbg* seed_drbg) {
  return compress_chunked_impl(data, dims, params, scheme, key, spec,
                               config, seed_drbg);
}

namespace {

/// Adapters giving the prelude parse one shape over two byte origins.
/// Both expose the ByteReader getters the parse needs, plus
/// crc_to_here() — the CRC-32 of every byte consumed so far, evaluated
/// immediately before the declared index CRC is read.
struct IndexMemReader {
  explicit IndexMemReader(BytesView a) : r(a), archive(a) {}
  ByteReader r;
  BytesView archive;
  uint8_t get_u8() { return r.get_u8(); }
  uint32_t get_u32() { return r.get_u32(); }
  uint64_t get_varint() { return r.get_varint(); }
  size_t pos() const { return r.pos(); }
  uint32_t crc_to_here() const { return crc32(archive.subspan(0, r.pos())); }
};

/// Pulls prelude bytes from a ByteSource one at a time (the prelude is
/// tiny next to the frames), retaining them so crc_to_here() can verify
/// the index CRC exactly as the in-memory parser does.  Truncation is
/// CorruptError, matching ByteReader.
class IndexStreamReader {
 public:
  explicit IndexStreamReader(ByteSource& src) : src_(src) {}

  uint8_t get_u8() { return next(); }
  uint32_t get_u32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t{next()} << (8 * i);
    return v;
  }
  uint64_t get_varint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      SZSEC_CHECK_FORMAT(shift < 64, "varint too long");
      const uint8_t b = next();
      SZSEC_CHECK_FORMAT(shift < 63 || (b & 0xFE) == 0,
                         "varint overflows 64 bits");
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
    }
    return v;
  }
  size_t pos() const { return buf_.size(); }
  uint32_t crc_to_here() const { return crc32(BytesView(buf_)); }

 private:
  uint8_t next() {
    uint8_t b;
    SZSEC_CHECK_FORMAT(read_full(src_, std::span<uint8_t>(&b, 1)) == 1,
                       "truncated archive prelude");
    buf_.push_back(b);
    return b;
  }

  ByteSource& src_;
  Bytes buf_;
};

/// The one v3 prelude parser, shared by the in-memory and streaming
/// decoders (Reader = IndexMemReader | IndexStreamReader).  Entry
/// offsets stay RELATIVE to body_start here; read_chunk_index
/// absolutizes them for its callers.
template <typename Reader>
ChunkIndex parse_chunk_index(Reader& r) {
  SZSEC_CHECK_FORMAT(r.get_u32() == kChunkedMagic, "bad archive magic");
  SZSEC_CHECK_FORMAT(r.get_u8() == kChunkedVersion,
                     "unsupported archive version");
  const uint8_t rank = r.get_u8();
  SZSEC_CHECK_FORMAT(rank >= 1 && rank <= Dims::kMaxRank, "bad rank");
  size_t extents[Dims::kMaxRank] = {};
  for (size_t i = 0; i < rank; ++i) {
    const uint64_t e = r.get_varint();
    SZSEC_CHECK_FORMAT(e > 0 && e <= kMaxExtent, "bad extent");
    extents[i] = static_cast<size_t>(e);
  }
  checked_field_elements(extents, rank);
  ChunkIndex out;
  out.dims = dims_from_extents(extents, rank);
  const uint64_t count = r.get_varint();
  SZSEC_CHECK_FORMAT(count >= 1 && count <= out.dims[0],
                     "implausible chunk count");
  uint64_t expect_rel = 0;
  uint64_t expect_row = 0;
  for (uint64_t i = 0; i < count; ++i) {
    ChunkEntry e;
    e.offset = r.get_varint();  // relative until body_start is known
    e.frame_len = r.get_varint();
    e.row_start = r.get_varint();
    e.row_extent = r.get_varint();
    SZSEC_CHECK_FORMAT(e.offset == expect_rel, "index offsets not dense");
    SZSEC_CHECK_FORMAT(e.frame_len > 0, "empty frame");
    // row_extent is an unbounded varint here; phrase the bound
    // subtractively so row_start + row_extent can never wrap uint64_t
    // (row_start == expect_row <= dims[0] by induction).
    SZSEC_CHECK_FORMAT(e.row_start == expect_row &&
                           e.row_extent >= 1 &&
                           e.row_extent <= out.dims[0] - e.row_start,
                       "index rows inconsistent");
    expect_rel += e.frame_len;
    expect_row += e.row_extent;
    out.entries.push_back(e);
  }
  SZSEC_CHECK_FORMAT(expect_row == out.dims[0],
                     "chunks do not cover the field");
  const uint32_t computed = r.crc_to_here();
  const uint32_t declared = r.get_u32();
  SZSEC_CHECK_FORMAT(computed == declared, "index CRC mismatch");
  out.body_start = r.pos();
  return out;
}

}  // namespace

ChunkIndex read_chunk_index(BytesView archive) {
  IndexMemReader r(archive);
  ChunkIndex out = parse_chunk_index(r);
  for (ChunkEntry& e : out.entries) e.offset += out.body_start;
  return out;
}

Dims chunked_dims(BytesView archive) {
  return read_chunk_index(archive).dims;
}

std::optional<uint64_t> parse_seek_trailer(BytesView trailer,
                                           uint64_t archive_size) {
  if (trailer.size() != kSeekTrailerSize) return std::nullopt;
  ByteReader r(trailer);
  const uint32_t footer_len = r.get_u32();
  if (r.get_u32() != kSeekTrailerMagic) return std::nullopt;
  // The magic IS present: from here every inconsistency is corruption of
  // a footer that once existed, not "no footer".
  SZSEC_CHECK_FORMAT(archive_size >= kSeekTrailerSize &&
                         footer_len <= archive_size - kSeekTrailerSize,
                     "seek footer length exceeds archive");
  return footer_len;
}

SeekTable parse_seek_footer(BytesView footer, uint64_t archive_size) {
  SZSEC_CHECK_FORMAT(archive_size >= footer.size() + kSeekTrailerSize,
                     "seek footer larger than archive");
  // Frames live strictly before the footer; a footer entry pointing into
  // the footer itself (or past the end) is forged.
  const uint64_t frame_region_end =
      archive_size - kSeekTrailerSize - footer.size();
  ByteReader r(footer);
  SZSEC_CHECK_FORMAT(r.get_u32() == kSeekFooterMagic,
                     "bad seek footer magic");
  SZSEC_CHECK_FORMAT(r.get_u8() == kSeekFooterVersion,
                     "unsupported seek footer version");
  const uint8_t dtype_byte = r.get_u8();
  SZSEC_CHECK_FORMAT(dtype_byte <= 1, "bad seek footer dtype");
  const uint8_t rank = r.get_u8();
  SZSEC_CHECK_FORMAT(rank >= 1 && rank <= Dims::kMaxRank, "bad rank");
  size_t extents[Dims::kMaxRank] = {};
  for (size_t i = 0; i < rank; ++i) {
    const uint64_t e = r.get_varint();
    SZSEC_CHECK_FORMAT(e > 0 && e <= kMaxExtent, "bad extent");
    extents[i] = static_cast<size_t>(e);
  }
  checked_field_elements(extents, rank);
  SeekTable out;
  out.dims = dims_from_extents(extents, rank);
  out.dtype = dtype_byte == 0 ? sz::DType::kFloat32 : sz::DType::kFloat64;
  out.from_footer = true;
  out.plane = out.dims.count() / out.dims[0];
  const uint64_t count = r.get_varint();
  SZSEC_CHECK_FORMAT(count >= 1 && count <= out.dims[0],
                     "implausible chunk count");
  uint64_t expect_off = 0;  // 0 = first entry (any prelude size)
  uint64_t expect_row = 0;
  for (uint64_t i = 0; i < count; ++i) {
    SeekEntry e;
    e.offset = r.get_varint();
    e.frame_len = r.get_varint();
    e.row_start = r.get_varint();
    e.row_extent = r.get_varint();
    e.elem_start = r.get_varint();
    e.elem_count = r.get_varint();
    SZSEC_CHECK_FORMAT(e.frame_len > 0, "empty frame");
    // Subtractive: offset and frame_len are untrusted varints whose sum
    // can wrap uint64_t (same idiom as the prelude index parse).
    SZSEC_CHECK_FORMAT(e.offset <= frame_region_end &&
                           e.frame_len <= frame_region_end - e.offset,
                       "seek entry extends past the frame region");
    SZSEC_CHECK_FORMAT(i == 0 || e.offset == expect_off,
                       "seek entry offsets not dense");
    SZSEC_CHECK_FORMAT(e.row_start == expect_row && e.row_extent >= 1 &&
                           e.row_extent <= out.dims[0] - e.row_start,
                       "seek entry rows inconsistent");
    // The element range is redundant with rows x plane; requiring exact
    // agreement is what catches a forged overlap/gap/overflow here (the
    // products cannot wrap: rows are bounded by dims[0] above, so both
    // sides are <= dims.count() <= kMaxElements).
    SZSEC_CHECK_FORMAT(e.elem_start == e.row_start * out.plane &&
                           e.elem_count == e.row_extent * out.plane,
                       "seek entry element range disagrees with rows");
    expect_off = e.offset + e.frame_len;
    expect_row += e.row_extent;
    out.entries.push_back(e);
  }
  SZSEC_CHECK_FORMAT(expect_row == out.dims[0],
                     "chunks do not cover the field");
  const uint32_t computed = crc32(footer.subspan(0, r.pos()));
  const uint32_t declared = r.get_u32();
  SZSEC_CHECK_FORMAT(computed == declared, "seek footer CRC mismatch");
  SZSEC_CHECK_FORMAT(r.pos() == footer.size(),
                     "seek footer has trailing bytes");
  return out;
}

uint64_t seek_footer_suffix_bytes(BytesView archive) noexcept {
  // Structural probe only: trailer framing plus the footer's leading
  // magic + version.  The salvage path calls this on damaged archives
  // where a full parse_seek_footer would rightly fail (frames dropped
  // or shifted out from under the footer's offsets), yet the footer
  // bytes themselves are still not field data and must not be counted
  // as unexplained damage.
  if (archive.size() < kSeekTrailerSize + 6) return 0;
  ByteReader t(archive.subspan(archive.size() - kSeekTrailerSize));
  uint32_t footer_len = 0;
  try {
    footer_len = t.get_u32();
    if (t.get_u32() != kSeekTrailerMagic) return 0;
  } catch (const Error&) {
    return 0;
  }
  if (footer_len < 6 ||
      footer_len > archive.size() - kSeekTrailerSize) {
    return 0;
  }
  ByteReader f(archive.subspan(
      archive.size() - kSeekTrailerSize - footer_len, footer_len));
  try {
    if (f.get_u32() != kSeekFooterMagic ||
        f.get_u8() != kSeekFooterVersion) {
      return 0;
    }
  } catch (const Error&) {
    return 0;
  }
  return footer_len + kSeekTrailerSize;
}

SeekTable seek_table_from_index(const ChunkIndex& index) {
  SeekTable out;
  out.dims = index.dims;
  out.from_footer = false;
  out.plane = index.dims.count() / index.dims[0];
  out.entries.reserve(index.entries.size());
  for (const ChunkEntry& e : index.entries) {
    out.entries.push_back(SeekEntry{e.offset, e.frame_len, e.row_start,
                                    e.row_extent, e.row_start * out.plane,
                                    e.row_extent * out.plane});
  }
  return out;
}

SeekTable read_seek_table(BytesView archive) {
  if (archive.size() >= kSeekTrailerSize) {
    const BytesView trailer =
        archive.subspan(archive.size() - kSeekTrailerSize);
    if (const std::optional<uint64_t> footer_len =
            parse_seek_trailer(trailer, archive.size())) {
      const size_t footer_start = archive.size() - kSeekTrailerSize -
                                  static_cast<size_t>(*footer_len);
      return parse_seek_footer(
          archive.subspan(footer_start,
                          static_cast<size_t>(*footer_len)),
          archive.size());
    }
  }
  return seek_table_from_index(read_chunk_index(archive));
}

std::string decode_chunk_frame(const FrameInfo& frame,
                               core::codec::RuntimeCache& runtimes,
                               BufferPool* pool,
                               const std::optional<Dims>& field_dims,
                               std::span<float> into, Dims& chunk_dims,
                               PipelineMetrics* times) {
  if (into.empty()) return "empty destination span";
  return try_decode_chunk<float>(frame, runtimes, pool, field_dims, into,
                                 nullptr, chunk_dims, times);
}

std::string decode_chunk_frame(const FrameInfo& frame,
                               core::codec::RuntimeCache& runtimes,
                               BufferPool* pool,
                               const std::optional<Dims>& field_dims,
                               std::span<double> into, Dims& chunk_dims,
                               PipelineMetrics* times) {
  if (into.empty()) return "empty destination span";
  return try_decode_chunk<double>(frame, runtimes, pool, field_dims, into,
                                  nullptr, chunk_dims, times);
}

namespace {

template <typename T>
std::vector<T> decompress_chunked_impl(BytesView archive, BytesView key,
                                       const ChunkedConfig& config) {
  const ChunkIndex index = read_chunk_index(archive);
  const size_t plane = index.dims.count() / index.dims[0];
  std::vector<T> out(index.dims.count());

  // Validate every frame before spending any decode time.
  std::vector<Frame> frames;
  for (size_t i = 0; i < index.entries.size(); ++i) {
    const ChunkEntry& e = index.entries[i];
    // Subtractive: both fields are untrusted varints, the naive sum can
    // wrap uint64_t back under archive.size() (see verify_v3_chunk).
    SZSEC_CHECK_FORMAT(e.offset <= archive.size() &&
                           e.frame_len <= archive.size() - e.offset,
                       "frame extends past archive end");
    const std::optional<Frame> f = parse_frame_at(archive, e.offset);
    SZSEC_CHECK_FORMAT(f.has_value(), "unparseable chunk frame");
    SZSEC_CHECK_FORMAT(f->chunk_id == i && f->row_start == e.row_start &&
                           f->row_extent == e.row_extent &&
                           f->frame_len == e.frame_len,
                       "frame disagrees with index");
    SZSEC_CHECK_FORMAT(f->crc_ok, "chunk CRC mismatch");
    frames.push_back(*f);
  }

  // Per-worker runtime caches + scratch pools: key schedules are built
  // at most once per worker, each chunk reconstructs straight into its
  // slice of `out` (slices are disjoint, so workers never contend), and
  // per-chunk metrics are merged in index order on this thread.
  ParallelChunkScheduler sched(
      ChunkSchedulerConfig{config.threads, config.max_in_flight});
  const auto workers = make_worker_states(sched.thread_count(), key);
  struct ChunkDecode {
    std::string error;
    bool crypto = false;
    PipelineMetrics times;
  };
  sched.run_ordered<ChunkDecode>(
      frames.size(),
      [&](size_t worker, size_t i) {
        const std::span<T> slice =
            std::span<T>(out).subspan(frames[i].row_start * plane,
                                      frames[i].row_extent * plane);
        Dims chunk_dims;
        ChunkDecode d;
        d.error = try_decode_chunk<T>(
            frames[i], workers[worker]->runtimes,
            &workers[worker]->scratch, index.dims, slice, nullptr,
            chunk_dims, &d.times, &d.crypto);
        return d;
      },
      [&](size_t i, ChunkDecode&& d) {
        if (!d.error.empty()) {
          const std::string msg =
              "chunk " + std::to_string(i) + ": " + d.error;
          if (d.crypto) throw CryptoError(msg);
          throw CorruptError(msg);
        }
        if (config.metrics != nullptr) config.metrics->merge(d.times);
      });
  return out;
}

}  // namespace

std::vector<float> decompress_chunked_f32(BytesView archive, BytesView key,
                                          const ChunkedConfig& config) {
  return decompress_chunked_impl<float>(archive, key, config);
}

std::vector<double> decompress_chunked_f64(BytesView archive, BytesView key,
                                           const ChunkedConfig& config) {
  return decompress_chunked_impl<double>(archive, key, config);
}

ChunkedStreamDecodeResult decompress_chunked_stream(
    ByteSource& in, ByteSink& out, BytesView key,
    const ChunkedConfig& config) {
  // Prelude first (byte-at-a-time, tolerant of any short-read schedule);
  // frames then arrive densely in index order, so the feed can cut the
  // stream into frames from the index's lengths alone.
  IndexStreamReader reader(in);
  const ChunkIndex index = parse_chunk_index(reader);

  ParallelChunkScheduler sched(
      ChunkSchedulerConfig{config.threads, config.max_in_flight});
  const auto workers = make_worker_states(sched.thread_count(), key);
  BufferPool frame_pool;

  ChunkedStreamDecodeResult res;
  res.dims = index.dims;
  bool dtype_set = false;

  struct FrameInput {
    Bytes frame;
  };
  struct ChunkDecode {
    std::string error;  ///< decode failure; framing errors throw instead
    bool crypto = false;  ///< failure was a MAC/cipher rejection
    core::DecompressResult r;
  };

  sched.run_ordered_fed<FrameInput, ChunkDecode>(
      index.entries.size(),
      [&](size_t i) {
        const ChunkEntry& e = index.entries[i];
        // frame_len is an untrusted varint (only > 0 at index parse) and
        // the stream has no known total size to bound it against: never
        // allocate it upfront — a forged index naming ~2^64 would turn
        // vector::resize into an untyped std::length_error/bad_alloc.
        // Read in bounded blocks instead; a stream that ends first
        // surfaces the same typed error having allocated no more than
        // the bytes actually present plus one block.
        constexpr uint64_t kFrameReadBlock = uint64_t{4} << 20;
        FrameInput fi{frame_pool.acquire(static_cast<size_t>(
            std::min<uint64_t>(e.frame_len, kFrameReadBlock)))};
        uint64_t got = 0;
        while (got < e.frame_len) {
          const size_t step = static_cast<size_t>(
              std::min<uint64_t>(e.frame_len - got, kFrameReadBlock));
          fi.frame.resize(static_cast<size_t>(got) + step);
          SZSEC_CHECK_FORMAT(
              read_full(in, std::span<uint8_t>(fi.frame)
                                .subspan(static_cast<size_t>(got))) == step,
              "frame extends past archive end");
          got += step;
        }
        return fi;
      },
      [&](size_t worker, size_t i, FrameInput&& fi) {
        const ChunkEntry& e = index.entries[i];
        const std::optional<Frame> f =
            parse_frame_at(BytesView(fi.frame), 0);
        SZSEC_CHECK_FORMAT(f.has_value(), "unparseable chunk frame");
        SZSEC_CHECK_FORMAT(f->chunk_id == i && f->row_start == e.row_start &&
                               f->row_extent == e.row_extent &&
                               f->frame_len == e.frame_len,
                           "frame disagrees with index");
        SZSEC_CHECK_FORMAT(f->crc_ok, "chunk CRC mismatch");
        // Decode failures are error *values* (the commit turns them into
        // "chunk i: reason"), matching the in-memory strict decoder.
        ChunkDecode d;
        try {
          const core::Header h = core::peek_header(f->container);
          if (h.dims[0] != f->row_extent) {
            d.error = "container rows != frame rows";
          } else if (h.dims.rank() != index.dims.rank()) {
            d.error = "rank mismatch";
          } else {
            for (size_t k = 1; k < h.dims.rank(); ++k) {
              if (h.dims[k] != index.dims[k]) d.error = "plane dims mismatch";
            }
          }
          if (d.error.empty()) {
            core::CipherSpec spec{h.cipher_kind, h.cipher_mode};
            spec.authenticate = (h.flags & core::kFlagAuthenticated) != 0;
            const CodecRuntime& runtime =
                workers[worker]->runtimes.get(h.params, h.scheme, spec);
            core::codec::DecodeOptions opts;
            opts.pool = &workers[worker]->scratch;
            d.r = core::codec::decode_payload(runtime.config(),
                                              f->container, opts);
          }
        } catch (const CryptoError& ex) {
          d.crypto = true;
          d.error = ex.what();
        } catch (const Error& ex) {
          d.error = ex.what();
        }
        frame_pool.release(std::move(fi.frame));
        return d;
      },
      [&](size_t i, ChunkDecode&& d) {
        if (!d.error.empty()) {
          const std::string msg =
              "chunk " + std::to_string(i) + ": " + d.error;
          if (d.crypto) throw CryptoError(msg);
          throw CorruptError(msg);
        }
        if (!dtype_set) {
          res.dtype = d.r.dtype;
          dtype_set = true;
        } else if (d.r.dtype != res.dtype) {
          throw CorruptError("chunk " + std::to_string(i) +
                             ": container dtype mismatch");
        }
        const BytesView bytes =
            d.r.dtype == sz::DType::kFloat32
                ? BytesView(reinterpret_cast<const uint8_t*>(d.r.f32.data()),
                            d.r.f32.size() * sizeof(float))
                : BytesView(reinterpret_cast<const uint8_t*>(d.r.f64.data()),
                            d.r.f64.size() * sizeof(double));
        out.write(bytes);
        res.elements += d.r.dtype == sz::DType::kFloat32 ? d.r.f32.size()
                                                         : d.r.f64.size();
        res.element_bytes += bytes.size();
        if (config.metrics != nullptr) config.metrics->merge(d.r.times);
      });
  out.flush();
  return res;
}

namespace {

template <typename T>
std::vector<T>& salvage_field(SalvageResult& out) {
  if constexpr (std::is_same_v<T, float>) {
    return out.f32;
  } else {
    return out.f64;
  }
}

template <typename T>
SalvageResult salvage_impl(BytesView archive, BytesView key,
                           const SalvageOptions& opts) {
  SalvageResult out;
  out.dtype = dtype_of<T>();
  std::vector<T>& field = salvage_field<T>(out);
  SalvageReport& rep = out.report;

  std::optional<ChunkIndex> index;
  try {
    index = read_chunk_index(archive);
  } catch (const Error&) {
  }
  rep.index_intact = index.has_value();

  // A trailing seek-table footer is framing, not field data: an indexed
  // offset landing in it means the frame is gone (truncated/dropped),
  // not corrupt, and its bytes are not unexplained damage.  The resync
  // scan below still covers the full archive, so a forged trailer can
  // never hide a recoverable frame.
  const uint64_t footer_suffix = seek_footer_suffix_bytes(archive);
  const uint64_t frame_region_end = archive.size() - footer_suffix;

  // Phase 1: locate a CRC-valid frame per chunk id.  With an intact
  // index, first try each chunk exactly where the index says (kOk); a
  // full resync scan then rescues chunks whose offsets no longer hold
  // (insertion, deletion, reordering) or, without an index, finds
  // everything we will ever know about.
  std::map<uint64_t, Frame> found;          // id -> CRC-valid frame
  std::map<uint64_t, bool> relocated;       // id -> found via scan
  std::map<uint64_t, std::string> failure;  // id -> latest reason
  std::map<uint64_t, uint64_t> located_bad; // id -> damaged frame's length
  size_t resolved_at_index = 0;

  if (index) {
    for (size_t i = 0; i < index->entries.size(); ++i) {
      const ChunkEntry& e = index->entries[i];
      if (e.offset >= frame_region_end) {
        failure[i] = "frame offset past the frame region (truncated?)";
        continue;
      }
      const std::optional<Frame> f = parse_frame_at(archive, e.offset);
      if (!f) {
        failure[i] = "no valid frame at indexed offset";
        located_bad[i] = e.frame_len;
        continue;
      }
      if (f->chunk_id != i || f->row_start != e.row_start ||
          f->row_extent != e.row_extent) {
        failure[i] = "frame fields disagree with index";
        // A CRC-valid frame here belongs to a *different* chunk (offsets
        // shifted by deletion/insertion) — chunk i itself may be gone,
        // so don't claim a damaged frame was located for it.
        if (!f->crc_ok) located_bad[i] = e.frame_len;
        continue;
      }
      if (!f->crc_ok) {
        failure[i] = "chunk CRC mismatch";
        located_bad[i] = e.frame_len;
        continue;
      }
      found.emplace(i, *f);
      relocated[i] = false;
      ++resolved_at_index;
    }
  }

  const bool need_scan =
      !index || resolved_at_index < index->entries.size();
  if (need_scan) {
    for (size_t pos = find_marker(archive, 0); pos < archive.size();
         pos = find_marker(archive, pos)) {
      const std::optional<Frame> f = parse_frame_at(archive, pos);
      if (!f || !f->crc_ok) {
        ++pos;  // false positive or damaged frame: keep scanning
        continue;
      }
      if (index) {
        // The CRC-protected index is authoritative: a scanned frame may
        // only stand in for the chunk id it claims, at that id's rows.
        const bool known = f->chunk_id < index->entries.size();
        if (!known ||
            index->entries[f->chunk_id].row_start != f->row_start ||
            index->entries[f->chunk_id].row_extent != f->row_extent) {
          pos += kMarkerSize;
          continue;
        }
      }
      if (found.emplace(f->chunk_id, *f).second) {
        relocated[f->chunk_id] = true;
      }
      pos = f->offset + f->frame_len;
    }
  }

  // Phase 2: decode every located frame; learn field dims from the index
  // or from the first decodable chunk.
  std::optional<Dims> field_dims;
  if (index) field_dims = index->dims;

  struct Decoded {
    uint64_t chunk_id;
    uint64_t row_start;
    uint64_t row_extent;
    size_t frame_len;
    std::vector<T> data;
  };
  // Chunk decodes fan out across workers (each with its own runtime
  // cache + scratch pool); a corrupt chunk is an error *value*, never an
  // exception, so one bad worker result cannot abort the salvage.
  // Commits arrive in chunk-id order, keeping the report and the
  // first-come row-claiming below deterministic.
  std::vector<std::pair<uint64_t, const Frame*>> jobs;
  jobs.reserve(found.size());
  for (auto& [id, f] : found) jobs.emplace_back(id, &f);

  struct SalvageDecode {
    std::string error;
    Dims chunk_dims;
    std::vector<T> data;
  };
  ParallelChunkScheduler sched(ChunkSchedulerConfig{opts.threads, 0});
  const auto workers = make_worker_states(sched.thread_count(), key);
  std::vector<Decoded> decoded;
  uint64_t max_row_end = 0;
  // With an intact index the field dims are known before fan-out and
  // every worker validates against them; scan-only recovery learns them
  // from the first decodable chunk at commit time instead (plane checks
  // for later chunks then happen in the commit).
  const std::optional<Dims> produce_dims = field_dims;
  sched.run_ordered<SalvageDecode>(
      jobs.size(),
      [&](size_t worker, size_t j) {
        SalvageDecode d;
        d.error = try_decode_chunk<T>(
            *jobs[j].second, workers[worker]->runtimes,
            &workers[worker]->scratch, produce_dims, std::span<T>{},
            &d.data, d.chunk_dims);
        return d;
      },
      [&](size_t j, SalvageDecode&& d) {
        const uint64_t id = jobs[j].first;
        const Frame& f = *jobs[j].second;
        if (d.error.empty() && !produce_dims && field_dims) {
          if (d.chunk_dims.rank() != field_dims->rank()) {
            d.error = "rank mismatch";
          } else {
            for (size_t i = 1; i < d.chunk_dims.rank(); ++i) {
              if (d.chunk_dims[i] != (*field_dims)[i]) {
                d.error = "plane dims mismatch";
              }
            }
          }
        }
        if (!d.error.empty()) {
          failure[id] = d.error;
          return;
        }
        if (!field_dims) {
          // Scan-only recovery: plane dims come from the chunk itself;
          // the slowest extent is completed below from row coverage.
          field_dims = d.chunk_dims;
        }
        max_row_end = std::max(max_row_end, f.row_start + f.row_extent);
        decoded.push_back(Decoded{id, f.row_start, f.row_extent,
                                  f.frame_len, std::move(d.data)});
      });

  if (!field_dims) {
    // Nothing decodable at all: report whatever we know and bail out.
    rep.chunks_expected = index ? index->entries.size() : 0;
    rep.bytes_skipped = archive.size();
    if (index) {
      rep.elements_total = index->dims.count();
      for (size_t i = 0; i < index->entries.size(); ++i) {
        const ChunkEntry& e = index->entries[i];
        const bool located = found.count(i) || located_bad.count(i);
        rep.chunks.push_back(ChunkReport{
            i, located ? ChunkStatus::kCorrupt : ChunkStatus::kMissing,
            e.row_start, e.row_extent,
            found.count(i) ? found[i].frame_len
                           : (located_bad.count(i) ? located_bad[i] : 0),
            failure.count(i) ? failure[i] : "undecodable"});
      }
      out.dims = index->dims;
      field.assign(out.dims.count(),
                   opts.fill == FallbackFill::kNaN
                       ? std::numeric_limits<T>::quiet_NaN()
                       : T{0});
    }
    return out;
  }

  const uint64_t total_rows = index ? index->dims[0] : max_row_end;
  out.dims = parallel::slab_dims(*field_dims,
                                 static_cast<size_t>(total_rows));
  const size_t plane = out.dims.count() / out.dims[0];
  rep.elements_total = out.dims.count();

  // Phase 3: assemble.  Rows are claimed first-come (decoded is in
  // chunk-id order), so a duplicated or adversarially overlapping frame
  // cannot overwrite data a legitimate chunk already recovered.
  std::vector<uint8_t> row_claimed(out.dims[0], 0);
  field.assign(out.dims.count(), T{0});
  double mean_acc = 0;
  uint64_t mean_n = 0;
  uint64_t frame_bytes_recovered = 0;
  std::map<uint64_t, Decoded*> placed;
  for (Decoded& d : decoded) {
    if (d.row_start + d.row_extent > out.dims[0]) {
      failure[d.chunk_id] = "rows outside the field";
      continue;
    }
    bool overlap = false;
    for (uint64_t rw = d.row_start; rw < d.row_start + d.row_extent; ++rw) {
      if (row_claimed[rw]) overlap = true;
    }
    if (overlap) {
      failure[d.chunk_id] = "rows overlap an already-recovered chunk";
      continue;
    }
    for (uint64_t rw = d.row_start; rw < d.row_start + d.row_extent; ++rw) {
      row_claimed[rw] = 1;
    }
    std::copy(d.data.begin(), d.data.end(),
              field.begin() +
                  static_cast<std::ptrdiff_t>(d.row_start * plane));
    for (T v : d.data) mean_acc += v;
    mean_n += d.data.size();
    frame_bytes_recovered += d.frame_len;
    placed.emplace(d.chunk_id, &d);
  }

  // Fallback fill for unclaimed rows.
  T fill = T{0};
  if (opts.fill == FallbackFill::kNaN) {
    fill = std::numeric_limits<T>::quiet_NaN();
  } else if (opts.fill == FallbackFill::kMean && mean_n > 0) {
    fill = static_cast<T>(mean_acc / static_cast<double>(mean_n));
  }
  for (size_t rw = 0; rw < out.dims[0]; ++rw) {
    if (row_claimed[rw]) continue;
    std::fill_n(field.begin() + static_cast<std::ptrdiff_t>(rw * plane),
                plane, fill);
  }

  // Phase 4: the report, one entry per expected chunk in id order.  With
  // no index the expectation is reconstructed from the recovered frames:
  // row gaps between them are attributed to missing ids.
  rep.elements_recovered = mean_n;
  rep.chunks_recovered = placed.size();
  if (index) {
    rep.chunks_expected = index->entries.size();
    for (size_t i = 0; i < index->entries.size(); ++i) {
      const ChunkEntry& e = index->entries[i];
      ChunkReport cr;
      cr.chunk_id = i;
      cr.row_start = e.row_start;
      cr.row_extent = e.row_extent;
      if (auto it = placed.find(i); it != placed.end()) {
        cr.status = relocated[i] ? ChunkStatus::kRelocated : ChunkStatus::kOk;
        cr.frame_bytes = it->second->frame_len;
      } else if (found.count(i) || located_bad.count(i)) {
        cr.status = ChunkStatus::kCorrupt;
        cr.detail = failure.count(i) ? failure[i] : "undecodable";
        cr.frame_bytes = found.count(i) ? found[i].frame_len : located_bad[i];
      } else {
        cr.status = ChunkStatus::kMissing;
        cr.detail = failure.count(i) ? failure[i] : "no frame found";
      }
      rep.chunks.push_back(std::move(cr));
    }
    const uint64_t accounted =
        frame_bytes_recovered + index->body_start + footer_suffix;
    rep.bytes_skipped =
        archive.size() > accounted ? archive.size() - accounted : 0;
  } else {
    uint64_t next_gap_id = 0;
    uint64_t row = 0;
    for (auto& [id, d] : placed) {
      if (d->row_start > row) {
        rep.chunks.push_back(ChunkReport{
            next_gap_id, ChunkStatus::kMissing, row, d->row_start - row, 0,
            "no frame found for these rows"});
      }
      ChunkReport cr;
      cr.chunk_id = id;
      cr.status = ChunkStatus::kRelocated;
      cr.row_start = d->row_start;
      cr.row_extent = d->row_extent;
      cr.frame_bytes = d->frame_len;
      rep.chunks.push_back(std::move(cr));
      next_gap_id = id + 1;
      row = d->row_start + d->row_extent;
    }
    rep.chunks_expected = rep.chunks.size();
    const uint64_t accounted = frame_bytes_recovered + footer_suffix;
    rep.bytes_skipped =
        archive.size() > accounted ? archive.size() - accounted : 0;
  }
  return out;
}

}  // namespace

SalvageResult decompress_salvage(BytesView archive, BytesView key,
                                 const SalvageOptions& opts) {
  return salvage_impl<float>(archive, key, opts);
}

SalvageResult decompress_salvage_f64(BytesView archive, BytesView key,
                                     const SalvageOptions& opts) {
  return salvage_impl<double>(archive, key, opts);
}

namespace {

/// Sliding window over a ByteSource for the single-pass salvage scan:
/// bytes are retained from `start()` (absolute stream offset) to
/// `end()`; the scanner drops everything behind its position, so the
/// window holds at most one frame plus scan slack at any moment.
class ScanWindow {
 public:
  explicit ScanWindow(ByteSource& src) : src_(src) {}

  /// Extends the window to cover absolute offsets [start(), abs_end);
  /// returns false when the stream ends first.
  bool ensure(uint64_t abs_end) {
    if (abs_end <= end()) return true;
    if (eof_) return false;
    const size_t need = static_cast<size_t>(abs_end - end());
    const size_t old = buf_.size();
    buf_.resize(old + need);
    const size_t got =
        read_full(src_, std::span<uint8_t>(buf_).subspan(old));
    buf_.resize(old + got);
    if (got < need) eof_ = true;
    return abs_end <= end();
  }

  /// Pulls up to `n` more bytes into the window (marker scanning reads
  /// ahead in blocks); returns the bytes actually added.
  size_t fill_more(size_t n) {
    if (eof_) return 0;
    const size_t old = buf_.size();
    buf_.resize(old + n);
    const size_t got =
        read_full(src_, std::span<uint8_t>(buf_).subspan(old));
    buf_.resize(old + got);
    if (got < n) eof_ = true;
    return got;
  }

  BytesView view() const { return BytesView(buf_); }
  uint64_t start() const { return start_; }
  uint64_t end() const { return start_ + buf_.size(); }
  bool eof() const { return eof_; }

  /// Forgets window bytes before absolute offset `abs`.
  void drop_before(uint64_t abs) {
    if (abs <= start_) return;
    const size_t n =
        std::min(static_cast<size_t>(abs - start_), buf_.size());
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(n));
    start_ += n;
  }

 private:
  ByteSource& src_;
  Bytes buf_;
  uint64_t start_ = 0;
  bool eof_ = false;
};

/// Marker + varint fields + CRC: the longest possible frame header.
constexpr size_t kFrameHeadMax = kMarkerSize + 4 * 10 + sizeof(uint32_t);
/// A scanned frame claiming a container longer than this is treated as
/// a marker false-positive — the window (and therefore RSS) never grows
/// past one such cap during salvage.
constexpr uint64_t kMaxStreamContainer = uint64_t{1} << 31;
/// The prelude retry loop stops growing the window here; a (legitimate)
/// index larger than this degrades to scan-only recovery.
constexpr size_t kMaxStreamPrelude = size_t{16} << 20;
/// Read-ahead block while hunting for the next resync marker.
constexpr size_t kScanBlock = size_t{256} << 10;

struct FrameHead {
  uint64_t chunk_id = 0;
  uint64_t row_start = 0;
  uint64_t row_extent = 0;
  uint64_t container_len = 0;
  uint32_t crc = 0;
  size_t head_len = 0;  ///< marker byte 0 .. container byte 0
};

/// Parses the frame header whose marker starts `v`; nullopt when the
/// bytes are malformed or implausible (same caps as parse_frame_at,
/// plus the streaming container-length cap).
std::optional<FrameHead> parse_frame_head(BytesView v) {
  try {
    ByteReader r(v);
    if (r.get_u64() != kResyncMarker) return std::nullopt;
    FrameHead h;
    h.chunk_id = r.get_varint();
    h.row_start = r.get_varint();
    h.row_extent = r.get_varint();
    h.container_len = r.get_varint();
    h.crc = r.get_u32();
    h.head_len = r.pos();
    if (h.chunk_id > kMaxExtent || h.row_start > kMaxExtent ||
        h.row_extent == 0 || h.row_extent > kMaxExtent ||
        h.container_len > kMaxStreamContainer) {
      return std::nullopt;
    }
    return h;
  } catch (const Error&) {
    return std::nullopt;
  }
}

}  // namespace

ChunkedStreamSalvageResult salvage_chunked_stream(ByteSource& in,
                                                  ByteSink& out,
                                                  BytesView key,
                                                  const SalvageOptions& opts) {
  SZSEC_REQUIRE(opts.fill != FallbackFill::kMean,
                "streaming salvage cannot compute a mean fill in one "
                "pass; use kZeros or kNaN");
  ChunkedStreamSalvageResult res;
  SalvageReport& rep = res.report;
  ScanWindow win(in);

  // Attempt a strict prelude parse over a growing window: truncation
  // failures retry with more bytes, genuine corruption keeps failing and
  // falls through to scan-only recovery (the buffered bytes stay in the
  // window, so no frame hiding in a damaged prelude is lost).
  std::optional<ChunkIndex> index;
  for (size_t want = 4096;; want *= 2) {
    win.ensure(want);
    try {
      IndexMemReader r(win.view());
      ChunkIndex idx = parse_chunk_index(r);
      for (ChunkEntry& e : idx.entries) e.offset += idx.body_start;
      index = std::move(idx);
      break;
    } catch (const Error&) {
      if (win.eof() || want >= kMaxStreamPrelude) break;
    }
  }
  rep.index_intact = index.has_value();

  // Serial decode state: one runtime cache + scratch pool (the pass is
  // single-threaded by design — ordered emission is the whole point).
  RuntimeCache runtimes(key);
  BufferPool scratch;

  struct Placed {
    ChunkStatus status;
    uint64_t row_start;
    uint64_t row_extent;
    uint64_t frame_len;
  };
  std::map<uint64_t, Placed> placed;
  std::map<uint64_t, std::string> failure;
  uint64_t rows_done = 0;
  uint64_t frame_bytes_recovered = 0;
  bool have_dtype = false;
  size_t elem_size = 0;
  std::optional<Dims> field_dims;
  size_t plane = 0;
  if (index) {
    field_dims = index->dims;
    plane = index->dims.count() / index->dims[0];
  }
  Bytes fill_row;  // one row of fill values, built when dtype is known

  const auto build_fill_row = [&] {
    fill_row.assign(plane * elem_size, 0);
    if (opts.fill == FallbackFill::kNaN) {
      if (res.dtype == sz::DType::kFloat32) {
        const float v = std::numeric_limits<float>::quiet_NaN();
        for (size_t i = 0; i < plane; ++i) {
          std::memcpy(fill_row.data() + i * sizeof(v), &v, sizeof(v));
        }
      } else {
        const double v = std::numeric_limits<double>::quiet_NaN();
        for (size_t i = 0; i < plane; ++i) {
          std::memcpy(fill_row.data() + i * sizeof(v), &v, sizeof(v));
        }
      }
    }
  };
  const auto emit_fill_rows = [&](uint64_t rows) {
    for (uint64_t i = 0; i < rows; ++i) out.write(BytesView(fill_row));
  };

  uint64_t pos = index ? index->body_start : 0;
  win.drop_before(pos);

  while (true) {
    // Hunt for the next marker, reading ahead block by block and keeping
    // only a marker-sized tail of unmatched bytes.
    size_t rel = find_marker(win.view(),
                             static_cast<size_t>(pos - win.start()));
    while (win.start() + rel >= win.end() && !win.eof()) {
      if (win.end() >= kMarkerSize) {
        win.drop_before(win.end() - (kMarkerSize - 1));
      }
      win.fill_more(kScanBlock);
      rel = find_marker(win.view(), 0);
    }
    if (win.start() + rel >= win.end()) break;  // stream exhausted
    pos = win.start() + rel;

    win.ensure(pos + kFrameHeadMax);
    const std::optional<FrameHead> fh =
        parse_frame_head(win.view().subspan(
            static_cast<size_t>(pos - win.start())));
    if (!fh) {
      ++pos;
      continue;
    }
    if (index) {
      // The CRC-protected index is authoritative: a scanned frame may
      // only stand in for the chunk id it claims, at that id's rows.
      if (fh->chunk_id >= index->entries.size() ||
          index->entries[fh->chunk_id].row_start != fh->row_start ||
          index->entries[fh->chunk_id].row_extent != fh->row_extent) {
        pos += kMarkerSize;
        continue;
      }
    }
    const uint64_t frame_len = fh->head_len + fh->container_len;
    if (!win.ensure(pos + frame_len)) {
      ++pos;  // stream ends inside this frame: scan what remains
      continue;
    }
    const BytesView container = win.view().subspan(
        static_cast<size_t>(pos - win.start()) + fh->head_len,
        static_cast<size_t>(fh->container_len));
    if (crc32(container) != fh->crc) {
      ++pos;  // damaged frame: keep scanning inside it
      continue;
    }
    if (placed.count(fh->chunk_id) != 0) {
      pos += frame_len;  // duplicate of an already-recovered chunk
      win.drop_before(pos);
      continue;
    }

    // CRC-valid frame for a new chunk: decode, then emit in order.
    std::string err;
    core::DecompressResult dr;
    Dims chunk_dims;
    try {
      const core::Header h = core::peek_header(container);
      if (h.dims[0] != fh->row_extent) {
        err = "container rows != frame rows";
      } else if (field_dims && h.dims.rank() != field_dims->rank()) {
        err = "rank mismatch";
      } else if (field_dims) {
        for (size_t k = 1; k < h.dims.rank(); ++k) {
          if (h.dims[k] != (*field_dims)[k]) err = "plane dims mismatch";
        }
      }
      if (err.empty() && have_dtype && h.dtype != res.dtype) {
        err = "container dtype mismatch";
      }
      if (err.empty()) {
        core::CipherSpec spec{h.cipher_kind, h.cipher_mode};
        spec.authenticate = (h.flags & core::kFlagAuthenticated) != 0;
        const CodecRuntime& runtime =
            runtimes.get(h.params, h.scheme, spec);
        core::codec::DecodeOptions dopts;
        dopts.pool = &scratch;
        dr = core::codec::decode_payload(runtime.config(), container,
                                         dopts);
        chunk_dims = h.dims;
      }
    } catch (const Error& ex) {
      err = ex.what();
    }
    if (err.empty() && fh->row_start < rows_done) {
      err = "rows precede already-emitted rows (single-pass order)";
    }
    if (!err.empty()) {
      failure[fh->chunk_id] = err;
      pos += frame_len;
      win.drop_before(pos);
      continue;
    }

    if (!have_dtype) {
      res.dtype = dr.dtype;
      elem_size = dr.dtype == sz::DType::kFloat32 ? sizeof(float)
                                                  : sizeof(double);
      have_dtype = true;
      if (!field_dims) {
        // Scan-only recovery: plane dims come from the chunk itself; the
        // slowest extent is completed from row coverage at the end.
        field_dims = chunk_dims;
        plane = field_dims->count() / (*field_dims)[0];
      }
      build_fill_row();
    }
    emit_fill_rows(fh->row_start - rows_done);
    const BytesView bytes =
        dr.dtype == sz::DType::kFloat32
            ? BytesView(reinterpret_cast<const uint8_t*>(dr.f32.data()),
                        dr.f32.size() * sizeof(float))
            : BytesView(reinterpret_cast<const uint8_t*>(dr.f64.data()),
                        dr.f64.size() * sizeof(double));
    out.write(bytes);
    rep.elements_recovered += bytes.size() / elem_size;
    rows_done = fh->row_start + fh->row_extent;
    frame_bytes_recovered += frame_len;
    ChunkStatus status = ChunkStatus::kRelocated;
    if (index &&
        pos == index->entries[fh->chunk_id].offset) {
      status = ChunkStatus::kOk;
    }
    placed.emplace(fh->chunk_id, Placed{status, fh->row_start,
                                        fh->row_extent, frame_len});
    pos += frame_len;
    win.drop_before(pos);
  }

  // Tail fill + report.
  if (index) {
    if (have_dtype && rows_done < index->dims[0]) {
      emit_fill_rows(index->dims[0] - rows_done);
      rows_done = index->dims[0];
    }
    res.dims = index->dims;
    rep.elements_total = index->dims.count();
    rep.chunks_expected = index->entries.size();
    for (size_t i = 0; i < index->entries.size(); ++i) {
      const ChunkEntry& e = index->entries[i];
      ChunkReport cr;
      cr.chunk_id = i;
      cr.row_start = e.row_start;
      cr.row_extent = e.row_extent;
      if (auto it = placed.find(i); it != placed.end()) {
        cr.status = it->second.status;
        cr.frame_bytes = it->second.frame_len;
      } else if (failure.count(i) != 0) {
        cr.status = ChunkStatus::kCorrupt;
        cr.detail = failure[i];
      } else {
        cr.status = ChunkStatus::kMissing;
        cr.detail = "no frame found";
      }
      rep.chunks.push_back(std::move(cr));
    }
    // Single-pass accounting: a trailing seek-table footer cannot be
    // recognized without look-ahead, so unlike the in-memory salvage its
    // bytes count as skipped here — an over-, never under-estimate.
    const uint64_t accounted =
        frame_bytes_recovered + index->body_start;
    rep.bytes_skipped =
        win.end() > accounted ? win.end() - accounted : 0;
  } else {
    if (field_dims) {
      res.dims = parallel::slab_dims(*field_dims,
                                     static_cast<size_t>(rows_done));
      rep.elements_total = res.dims.count();
    }
    uint64_t next_gap_id = 0;
    uint64_t row = 0;
    for (const auto& [id, p] : placed) {
      if (p.row_start > row) {
        rep.chunks.push_back(ChunkReport{
            next_gap_id, ChunkStatus::kMissing, row, p.row_start - row, 0,
            "no frame found for these rows"});
      }
      ChunkReport cr;
      cr.chunk_id = id;
      cr.status = ChunkStatus::kRelocated;
      cr.row_start = p.row_start;
      cr.row_extent = p.row_extent;
      cr.frame_bytes = p.frame_len;
      rep.chunks.push_back(std::move(cr));
      next_gap_id = id + 1;
      row = p.row_start + p.row_extent;
    }
    rep.chunks_expected = rep.chunks.size();
    rep.bytes_skipped = win.end() > frame_bytes_recovered
                            ? win.end() - frame_bytes_recovered
                            : 0;
  }
  rep.chunks_recovered = placed.size();
  out.flush();
  return res;
}

}  // namespace szsec::archive
