// Read-only archive integrity verification (`szsec_cli verify`).
//
// verify_archive() answers "will a strict decode of these bytes
// succeed?" without running one: no decryption, no decompression, no
// field reconstruction — only the structural checks both formats carry
// in plaintext.  For a v3 chunked archive that is the prelude parse +
// index CRC, then per chunk: frame bounds, frame parse, index
// agreement, the frame's container CRC-32 (computed over ciphertext, so
// it needs no key), the chunk's own container-header parse and its
// consistency with the index, and — when the archive is authenticated
// and a key is supplied — the HMAC-SHA256 tag.  For a v2 single
// container it is the header parse plus the MAC when checkable (the v2
// payload CRC covers the *plaintext* payload and is only computable by
// a full decode; verify reports it unchecked).
//
// The relationship to salvage (src/archive/chunked.h): verify reports,
// salvage repairs.  Run `verify` to learn whether an archive is intact
// and which chunks are damaged; run salvage to actually recover the
// intact chunks of a damaged archive.  docs/ARCHITECTURE.md carries the
// decision table.
#pragma once

#include <string>
#include <vector>

#include "archive/chunked.h"

namespace szsec::archive {

/// Outcome of the MAC check on one container.
enum class MacCheck : uint8_t {
  kAbsent,  ///< container carries no authentication tag
  kNoKey,   ///< tag present but no key supplied; not checked
  kPassed,
  kFailed,
};

const char* to_string(MacCheck m);

/// Verification outcome for one chunk (v3) or the whole container (v2).
struct VerifyChunk {
  uint64_t chunk_id = 0;
  uint64_t offset = 0;     ///< absolute byte offset of the frame/container
  uint64_t frame_len = 0;  ///< frame bytes (v3) / container bytes (v2)
  uint64_t row_start = 0;
  uint64_t row_extent = 0;
  bool ok = false;  ///< every performed check passed
  MacCheck mac = MacCheck::kAbsent;
  std::string detail;  ///< first failure reason, empty when ok
};

/// Structured outcome of one verification pass.
struct VerifyReport {
  bool chunked = false;     ///< v3 archive (false: v2 single container)
  bool prelude_ok = false;  ///< v3: prelude parse + index CRC; v2: header
  std::string prelude_detail;  ///< failure reason, empty when prelude_ok
  Dims dims;                   ///< rank 0 when the prelude is unreadable
  /// Bytes past the last indexed frame (v3) / past the container (v2).
  /// Reported but not counted as damage: strict decode ignores them.
  uint64_t trailing_bytes = 0;
  uint64_t chunks_ok = 0;
  std::vector<VerifyChunk> chunks;  ///< v2: exactly one entry

  /// True when a strict decode of the same bytes (with the same key)
  /// would get past every check verify can see.
  bool clean() const { return prelude_ok && chunks_ok == chunks.size(); }
};

/// Scans `archive` (v3 chunked or v2 single container, told apart by
/// magic) and reports per-chunk integrity.  `key` is only used to check
/// HMAC tags on authenticated containers; pass empty to verify keyless
/// (tags are then reported MacCheck::kNoKey, not failures).  Never
/// throws on corrupt input — damage lands in the report.
VerifyReport verify_archive(BytesView archive, BytesView key = {});

}  // namespace szsec::archive
