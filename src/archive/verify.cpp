#include "archive/verify.h"

#include <optional>

#include "core/codec.h"
#include "crypto/sha256.h"

namespace szsec::archive {

namespace {

/// Checks the encrypt-then-MAC tag of one container (v2 file or v3
/// chunk payload) against the pre-derived MAC key.  `auth_key` empty
/// means the caller had no key.  On kFailed, `detail` says why.
MacCheck check_mac(BytesView container, const core::Header& h,
                   BytesView auth_key, std::string& detail) {
  if ((h.flags & core::kFlagAuthenticated) == 0) return MacCheck::kAbsent;
  if (auth_key.empty()) return MacCheck::kNoKey;
  constexpr size_t kTag = crypto::Sha256::kDigestSize;
  if (container.size() < kTag) {
    detail = "authenticated container too short";
    return MacCheck::kFailed;
  }
  const BytesView signed_part =
      container.subspan(0, container.size() - kTag);
  const BytesView tag = container.subspan(container.size() - kTag);
  const crypto::Sha256::Digest expect =
      crypto::hmac_sha256(auth_key, signed_part);
  if (!crypto::constant_time_equal(BytesView(expect.data(), expect.size()),
                                   tag)) {
    detail = "authentication tag mismatch: container tampered with "
             "or wrong key";
    return MacCheck::kFailed;
  }
  return MacCheck::kPassed;
}

/// Verifies one v3 chunk against its index entry; mirrors the strict
/// decoder's checks (decompress_chunked_impl + try_decode_chunk) short
/// of actually decoding, so "verify clean" and "strict decode succeeds"
/// agree on everything verify can see.
VerifyChunk verify_v3_chunk(BytesView archive, const ChunkIndex& index,
                            size_t i, BytesView auth_key,
                            std::optional<sz::DType>& dtype) {
  const ChunkEntry& e = index.entries[i];
  VerifyChunk c;
  c.chunk_id = i;
  c.offset = e.offset;
  c.frame_len = e.frame_len;
  c.row_start = e.row_start;
  c.row_extent = e.row_extent;
  // Subtractive bound: offset and frame_len come from untrusted varints
  // (frame_len is only checked > 0 at index parse, and offsets are
  // running sums of frame_lens that may themselves have wrapped), so
  // the naive `offset + frame_len > size` sum can wrap uint64_t back
  // into range and admit an out-of-bounds parse_frame.
  if (e.offset > archive.size() ||
      e.frame_len > archive.size() - e.offset) {
    c.detail = "frame extends past archive end";
    return c;
  }
  const std::optional<FrameInfo> f =
      parse_frame(archive, static_cast<size_t>(e.offset));
  if (!f) {
    c.detail = "unparseable chunk frame";
    return c;
  }
  if (f->chunk_id != i || f->row_start != e.row_start ||
      f->row_extent != e.row_extent || f->frame_len != e.frame_len) {
    c.detail = "frame disagrees with index";
    return c;
  }
  if (!f->crc_ok) {
    c.detail = "chunk CRC mismatch";
    return c;
  }
  core::Header h;
  try {
    h = core::peek_header(f->container);
  } catch (const Error& ex) {
    c.detail = ex.what();
    return c;
  }
  if (h.dims[0] != f->row_extent) {
    c.detail = "container rows != frame rows";
    return c;
  }
  if (h.dims.rank() != index.dims.rank()) {
    c.detail = "rank mismatch";
    return c;
  }
  for (size_t k = 1; k < h.dims.rank(); ++k) {
    if (h.dims[k] != index.dims[k]) {
      c.detail = "plane dims mismatch";
      return c;
    }
  }
  if (dtype.has_value() && h.dtype != *dtype) {
    c.detail = "container dtype mismatch";
    return c;
  }
  c.mac = check_mac(f->container, h, auth_key, c.detail);
  if (c.mac == MacCheck::kFailed) return c;
  if (!dtype.has_value()) dtype = h.dtype;
  c.ok = true;
  return c;
}

VerifyReport verify_v3(BytesView archive, BytesView auth_key) {
  VerifyReport rep;
  rep.chunked = true;
  ChunkIndex index;
  try {
    index = read_chunk_index(archive);
  } catch (const Error& ex) {
    rep.prelude_detail = ex.what();
    return rep;
  }
  rep.prelude_ok = true;
  rep.dims = index.dims;
  std::optional<sz::DType> dtype;
  for (size_t i = 0; i < index.entries.size(); ++i) {
    VerifyChunk c = verify_v3_chunk(archive, index, i, auth_key, dtype);
    if (c.ok) ++rep.chunks_ok;
    rep.chunks.push_back(std::move(c));
  }
  // Same subtractive phrasing as the per-chunk bound: with a forged
  // index the sum can wrap and report absurd trailing byte counts.
  const ChunkEntry& last = index.entries.back();
  if (last.offset <= archive.size() &&
      last.frame_len <= archive.size() - last.offset) {
    rep.trailing_bytes = archive.size() - (last.offset + last.frame_len);
  }
  return rep;
}

VerifyReport verify_v2(BytesView container, BytesView auth_key) {
  VerifyReport rep;
  rep.chunked = false;
  VerifyChunk c;
  c.frame_len = container.size();
  core::Header h;
  try {
    h = core::peek_header(container);
  } catch (const Error& ex) {
    rep.prelude_detail = ex.what();
    rep.chunks.push_back(std::move(c));
    return rep;
  }
  rep.prelude_ok = true;
  rep.dims = h.dims;
  c.row_extent = h.dims[0];
  c.mac = check_mac(container, h, auth_key, c.detail);
  c.ok = c.mac != MacCheck::kFailed;
  if (c.ok) ++rep.chunks_ok;
  // The v2 payload CRC covers the plaintext payload; without a decode
  // it stays unchecked.  Everything past header + body (+ tag) is
  // trailing slack strict decode would also ignore (for authenticated
  // containers the MAC has already vouched for the exact byte count).
  const uint64_t declared =
      core::write_header(h).size() + h.payload_size +
      ((h.flags & core::kFlagAuthenticated) != 0
           ? crypto::Sha256::kDigestSize
           : 0);
  rep.trailing_bytes =
      container.size() > declared ? container.size() - declared : 0;
  rep.chunks.push_back(std::move(c));
  return rep;
}

}  // namespace

const char* to_string(MacCheck m) {
  switch (m) {
    case MacCheck::kAbsent:
      return "absent";
    case MacCheck::kNoKey:
      return "not checked (no key)";
    case MacCheck::kPassed:
      return "passed";
    default:
      return "FAILED";
  }
}

VerifyReport verify_archive(BytesView archive, BytesView key) {
  Bytes auth_key;
  if (!key.empty()) auth_key = core::codec::derive_auth_key(key);
  uint32_t magic = 0;
  if (archive.size() >= sizeof(magic)) {
    std::memcpy(&magic, archive.data(), sizeof(magic));
  }
  return magic == kChunkedMagic ? verify_v3(archive, BytesView(auth_key))
                                : verify_v2(archive, BytesView(auth_key));
}

}  // namespace szsec::archive
