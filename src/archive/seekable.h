// Random access into chunked archives without a full decode.
//
// A v3 archive is a sequence of independently coded chunks — each its
// own szsec container with its own CTR/CBC IV — so decryption can start
// at any chunk boundary.  SeekableReader exploits that: it parses the
// seek table once at open (two positioned reads when the archive
// carries the seek-table footer, a bounded prelude read otherwise) and
// then serves element ranges and rank-2/3/4 hyperslab ROIs by decoding
// ONLY the chunks the request touches, straight out of a positioned-
// read ByteSource.  The archive is never materialized: a range covering
// one chunk of a terabyte archive reads one frame plus the table.
//
//   * read_range(lo, hi, out): the half-open element slice [lo, hi) of
//     the row-major field.  A chunk fully inside the request decodes
//     directly into the caller's span (the codec's into-span path — no
//     per-chunk temporary); boundary chunks decode into per-worker
//     scratch and copy the overlap.
//   * read_roi(origin, extent, out): the axis-aligned hyperslab
//     origin[i] <= x_i < origin[i] + extent[i], gathered row by row
//     through the chunk structure (chunks split the slowest dim only,
//     so a ROI touches exactly the chunks its slowest-dim range
//     intersects).
//
// Multi-chunk requests fan out on ParallelChunkScheduler with in-order
// commits; single-chunk requests decode serially on the calling thread
// (no pool spin-up on the latency path).  Every frame is validated
// against the seek table (id, rows, length, CRC) before its container
// is decoded, and decode failures — wrong key included — surface as
// typed errors (CorruptError/CryptoError), never as partial output.
//
// Sources that cannot seek (pipes) fail at open with the I/O layer's
// typed IoError (ESPIPE): random access over a stream is a caller
// error, not something to silently buffer around.
#pragma once

#include <memory>
#include <string>

#include "archive/chunked.h"

namespace szsec::archive {

/// Opaque random-access handle over one chunked archive.  Open it from
/// a path, a borrowed FILE*, borrowed memory, or any seekable
/// ByteSource; then issue any number of range/ROI reads (serially —
/// the reader itself is not thread-safe, but each read parallelizes
/// internally).
struct SeekableOptions {
  /// Worker threads for multi-chunk requests
  /// (0 = parallel::default_thread_count(), honoring SZSEC_THREADS).
  unsigned threads = 0;
  /// Backpressure window, as ChunkedConfig::max_in_flight.
  size_t max_in_flight = 0;
};

class SeekableReader {
 public:
  using Options = SeekableOptions;

  /// Opens an archive over any positioned-read source (takes
  /// ownership).  Parses the seek-table footer when present, else
  /// falls back to the prelude index (footer-less archives).  Throws
  /// IoError (ESPIPE) when the source cannot seek, CorruptError when
  /// the table — footer or prelude — is damaged or forged.
  static std::unique_ptr<SeekableReader> open(
      std::unique_ptr<ByteSource> src, BytesView key,
      const Options& options = {});

  /// Opens the archive file at `path` (positioned reads, no mapping).
  static std::unique_ptr<SeekableReader> open(const std::string& path,
                                              BytesView key,
                                              const Options& options = {});

  /// Opens over a borrowed open stream (not closed; must outlive the
  /// reader and not be read through concurrently).
  static std::unique_ptr<SeekableReader> open(std::FILE* file,
                                              BytesView key,
                                              const Options& options = {});

  /// Opens over borrowed archive bytes (must outlive the reader).
  static std::unique_ptr<SeekableReader> open(BytesView archive,
                                              BytesView key,
                                              const Options& options = {});

  ~SeekableReader();
  SeekableReader(const SeekableReader&) = delete;
  SeekableReader& operator=(const SeekableReader&) = delete;

  const Dims& dims() const { return table_.dims; }
  /// Element type of the field (from the footer, or peeked from the
  /// first chunk's container header on the fallback path).
  sz::DType dtype() const { return dtype_; }
  size_t chunk_count() const { return table_.entries.size(); }
  /// True when the archive carried the seek-table footer (open cost:
  /// two positioned reads instead of a prelude parse).
  bool from_footer() const { return table_.from_footer; }
  uint64_t elements() const { return table_.dims.count(); }
  uint64_t archive_size() const { return archive_size_; }
  /// The parsed per-chunk table (offsets, lengths, element ranges).
  const SeekTable& table() const { return table_; }

  /// Archive bytes actually fetched from the source so far — table,
  /// probes, and every frame read; the touched-bytes metric
  /// bench_seekable gates on.
  uint64_t bytes_read() const { return bytes_read_; }

  /// Decodes the half-open element range [elem_lo, elem_hi) of the
  /// row-major field into `out` (out.size() must equal the range
  /// length).  Throws Error on a bad range or dtype mismatch,
  /// CorruptError/CryptoError when a touched chunk is damaged or the
  /// key is wrong.
  void read_range(uint64_t elem_lo, uint64_t elem_hi,
                  std::span<float> out);
  void read_range(uint64_t elem_lo, uint64_t elem_hi,
                  std::span<double> out);

  /// Decodes the axis-aligned hyperslab origin[i] <= x_i <
  /// origin[i] + extent[i] into `out` in row-major ROI order
  /// (out.size() must equal the extent product).  origin/extent must
  /// have exactly dims().rank() entries.
  void read_roi(std::span<const size_t> origin,
                std::span<const size_t> extent, std::span<float> out);
  void read_roi(std::span<const size_t> origin,
                std::span<const size_t> extent, std::span<double> out);

 private:
  SeekableReader(std::unique_ptr<ByteSource> src, BytesView key,
                 const Options& options);

  template <typename T>
  void read_range_impl(uint64_t elem_lo, uint64_t elem_hi,
                       std::span<T> out);
  template <typename T>
  void read_roi_impl(std::span<const size_t> origin,
                     std::span<const size_t> extent, std::span<T> out);

  /// preads chunk `i`'s frame into `buf` and validates it against the
  /// seek table (marker, id, rows, length, CRC); returns the parsed
  /// frame borrowing from `buf`.
  FrameInfo fetch_frame(size_t i, Bytes& buf);

  std::unique_ptr<ByteSource> src_;
  Bytes key_;
  Options options_;
  SeekTable table_;
  sz::DType dtype_ = sz::DType::kFloat32;
  uint64_t archive_size_ = 0;
  uint64_t bytes_read_ = 0;
  /// Key schedules for the serial (single-chunk) path, reused across
  /// reads; multi-chunk fan-out builds per-worker caches instead.
  core::codec::RuntimeCache runtimes_;
  BufferPool scratch_;
};

}  // namespace szsec::archive
