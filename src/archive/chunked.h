// Fault-tolerant chunked archives (container format v3).
//
// The single-container pipeline assumes its bytes arrive intact: one
// flipped bit in a CBC block or in the Huffman tree loses the whole
// field.  This module bounds the blast radius of corruption to one
// chunk.  A field is split into independent slabs (the same planning as
// src/parallel), each compressed + encrypted as a self-contained szsec
// container with its own IV, and framed with a resync marker and a
// CRC-32 so damage is detected per chunk and the decoder can skip it.
//
// Archive layout (v3):
//   u32 magic "SZS3" | u8 version=3 | u8 rank | varint dims[rank]
//   varint chunk_count
//   index: chunk_count x (varint offset     -- frame start, relative
//                                              to the first frame
//                         varint frame_len
//                         varint row_start | varint row_extent)
//   u32 index_crc   -- CRC-32 of every byte from magic to here
//   frames: chunk_count x
//     u64 resync marker | varint chunk_id
//     varint row_start | varint row_extent
//     varint container_len | u32 container_crc | container bytes
//
// Seek-table footer (optional, ChunkedConfig::seek_table, on by
// default).  Appended AFTER the frames so old readers — which stop at
// the last indexed frame — ignore it as trailing bytes, while a
// seekable reader can locate every chunk with two positioned reads
// (the 8-byte trailer, then the footer) and no prelude scan:
//   footer: u32 magic "SZSK" | u8 version=1 | u8 dtype (0=f32, 1=f64)
//           u8 rank | varint dims[rank]
//           varint chunk_count
//           table: chunk_count x (varint offset     -- ABSOLUTE frame
//                                                      start
//                                 varint frame_len
//                                 varint row_start | varint row_extent
//                                 varint elem_start | varint elem_count)
//           u32 footer_crc  -- CRC-32 of every footer byte up to here
//   trailer: u32 footer_len | u32 trailer magic "KSZS"   (last 8 bytes)
// The element ranges are the chunk's half-open [elem_start,
// elem_start + elem_count) slice of the row-major field; together with
// dims they describe each chunk's hyperslab (rows [row_start,
// row_start + row_extent) across the full plane) for rank-2/3 ROI
// reads.  All fields are untrusted on parse: parse_seek_footer
// cross-checks rows against dims, element ranges against rows x plane,
// offsets against the archive size, and the CRC — a forged footer is
// CorruptError, never an out-of-bounds read (see
// docs/FORMATS.md for the normative byte layout).
//
// Frames are self-describing (id + row range + length + CRC behind a
// fixed 8-byte marker), so the salvage decoder recovers intact chunks
// even when the header/index is destroyed or frame offsets shifted
// (byte insertion/deletion): it rescans the damaged region for the next
// marker.  No plaintext statistics of the field are stored — the mean
// fallback fill is computed from the *recovered* elements, so the
// archive leaks nothing about encrypted content beyond its size.
//
// Threading model: both directions run chunk-parallel on a
// parallel::ParallelChunkScheduler — bounded in-flight chunks, per-worker
// scratch state, and commits in chunk-index order on the calling thread.
// Output is byte-identical for every thread count: per-chunk IVs are
// derived from the chunk index before fan-out, and the archive is
// assembled in index order regardless of completion order.
#pragma once

#include <optional>
#include <string>

#include "common/io.h"
#include "common/timer.h"
#include "core/codec.h"
#include "parallel/slab.h"

namespace szsec::archive {

inline constexpr uint32_t kChunkedMagic = 0x33535A53;  // "SZS3"
inline constexpr uint8_t kChunkedVersion = 3;
/// Resync marker preceding every chunk frame ("SZ!RSYNC" backwards in
/// memory: chosen once, never a valid container prefix).
inline constexpr uint64_t kResyncMarker = 0x434E595352215A53ull;

/// Seek-table footer framing (see the file comment for the layout).
inline constexpr uint32_t kSeekFooterMagic = 0x4B535A53;   // "SZSK"
inline constexpr uint8_t kSeekFooterVersion = 1;
inline constexpr uint32_t kSeekTrailerMagic = 0x535A534B;  // "KSZS"
/// Fixed trailer: u32 footer_len | u32 kSeekTrailerMagic.
inline constexpr size_t kSeekTrailerSize = 2 * sizeof(uint32_t);

struct ChunkedConfig {
  /// Worker threads for compression / strict decompression
  /// (0 = parallel::default_thread_count(), honoring SZSEC_THREADS).
  unsigned threads = 0;
  /// Number of chunks (0 = 2x threads, capped by the slowest extent).
  /// NOTE: for reproducible bytes across machines/thread counts, pin
  /// this explicitly — the default is derived from `threads`.
  size_t chunks = 0;
  /// Backpressure window: chunks submitted but not yet committed
  /// (0 = 2x threads).  Bounds peak memory for huge archives.
  size_t max_in_flight = 0;
  /// Optional sink receiving the per-stage PipelineMetrics aggregated
  /// across all chunks and workers of a decode (compression reports its
  /// metrics in ChunkedCompressResult::times instead).  Not owned.
  PipelineMetrics* metrics = nullptr;
  /// Frame staging for the streaming compressor.  The v3 index (which
  /// carries every frame length) precedes the frames, so frames must be
  /// buffered until the last chunk commits; kTempFile spools them
  /// through an unlinked temporary file so RSS stays bounded by the
  /// in-flight window, kMemory keeps them in RAM (what the in-memory
  /// compress_chunked wrappers use).  The choice never changes the
  /// emitted bytes.
  FrameSpool::Backing spool = FrameSpool::Backing::kTempFile;
  /// Append the seek-table footer (random-access metadata for
  /// SeekableReader).  On by default; old readers ignore the footer as
  /// trailing bytes, so it costs a few dozen bytes per chunk and
  /// nothing else.  Turn off to reproduce pre-footer archive bytes
  /// exactly (the golden-container suite pins both variants).
  bool seek_table = true;
};

struct ChunkedCompressResult {
  Bytes archive;
  size_t chunk_count = 0;
  /// Aggregate stats (sums over chunks; predictable_fraction weighted).
  core::CompressStats stats;
  /// Per-stage time + byte-flow metrics summed over every chunk (all
  /// workers), merged deterministically in chunk-index order.
  PipelineMetrics times;
};

/// Compresses `data` into a fault-tolerant chunked archive.  Parameters
/// mirror parallel::compress_slabs; every chunk gets its own IV from
/// `seed_drbg` (or the global DRBG).
ChunkedCompressResult compress_chunked(std::span<const float> data,
                                       const Dims& dims,
                                       const sz::Params& params,
                                       core::Scheme scheme, BytesView key,
                                       const core::CipherSpec& spec = {},
                                       const ChunkedConfig& config = {},
                                       crypto::CtrDrbg* seed_drbg = nullptr);
ChunkedCompressResult compress_chunked(std::span<const double> data,
                                       const Dims& dims,
                                       const sz::Params& params,
                                       core::Scheme scheme, BytesView key,
                                       const core::CipherSpec& spec = {},
                                       const ChunkedConfig& config = {},
                                       crypto::CtrDrbg* seed_drbg = nullptr);

/// Outcome of one streaming compression.  The archive bytes live in the
/// caller's sink; everything else mirrors ChunkedCompressResult.
struct ChunkedStreamResult {
  size_t chunk_count = 0;
  uint64_t archive_bytes = 0;  ///< total bytes written to the sink
  core::CompressStats stats;
  PipelineMetrics times;
};

/// Streaming compress: pulls raw little-endian element bytes (row-major,
/// dims.count() elements of `dtype`) from `in` one chunk at a time and
/// writes the finished v3 archive to `out`, holding at most the
/// scheduler's in-flight window of chunks in memory — peak RSS is
/// O(chunk_size x max_in_flight) however large the field is (frames are
/// staged in a FrameSpool until the index can be written; see
/// ChunkedConfig::spool).  The emitted bytes are identical to
/// compress_chunked on the same elements, for every thread count.
/// Throws IoError when `in` ends before dims.count() elements arrived.
ChunkedStreamResult compress_chunked_stream(
    ByteSource& in, ByteSink& out, sz::DType dtype, const Dims& dims,
    const sz::Params& params, core::Scheme scheme, BytesView key,
    const core::CipherSpec& spec = {}, const ChunkedConfig& config = {},
    crypto::CtrDrbg* seed_drbg = nullptr);

/// Strict decode: requires every chunk intact; throws CorruptError on any
/// damage (the fail-fast path for callers who cannot accept data loss).
std::vector<float> decompress_chunked_f32(BytesView archive, BytesView key,
                                          const ChunkedConfig& config = {});
std::vector<double> decompress_chunked_f64(BytesView archive, BytesView key,
                                           const ChunkedConfig& config = {});

/// Outcome of one streaming decode.
struct ChunkedStreamDecodeResult {
  Dims dims;
  sz::DType dtype = sz::DType::kFloat32;
  uint64_t elements = 0;       ///< elements written to the sink
  uint64_t element_bytes = 0;  ///< bytes written (elements x dtype size)
};

/// Streaming strict decode: reads a v3 archive from `in` (tolerating
/// arbitrarily short reads — a 1-byte dribble works) and writes the
/// reconstructed field to `out` as raw little-endian element bytes in
/// chunk-index order.  dtype-agnostic: the element type comes from the
/// chunks themselves and is reported in the result; mixed dtypes are
/// CorruptError.  Memory is bounded by the in-flight window, never by
/// field or archive size.  Throws exactly where decompress_chunked_f32/
/// f64 would (CorruptError on any damage).
ChunkedStreamDecodeResult decompress_chunked_stream(
    ByteSource& in, ByteSink& out, BytesView key,
    const ChunkedConfig& config = {});

/// Reads the archive's field dims without decompressing (strict parse).
Dims chunked_dims(BytesView archive);

/// One index entry, with `offset` made absolute (from archive start).
struct ChunkEntry {
  uint64_t offset = 0;     ///< frame start, absolute byte offset
  uint64_t frame_len = 0;  ///< whole frame, marker included
  uint64_t row_start = 0;  ///< slowest-dim start
  uint64_t row_extent = 0;
};

/// Strictly parsed archive prelude; `body_start` is the offset of the
/// first frame.  Throws CorruptError on any inconsistency (including an
/// index CRC mismatch).  Used by tooling and the fault-injection harness
/// to locate chunk boundaries.
struct ChunkIndex {
  Dims dims;
  size_t body_start = 0;
  std::vector<ChunkEntry> entries;
};
ChunkIndex read_chunk_index(BytesView archive);

/// One seek-table entry: where chunk i's frame lives and which slice of
/// the row-major field it reconstructs.  All offsets absolute.
struct SeekEntry {
  uint64_t offset = 0;      ///< frame start (marker byte 0)
  uint64_t frame_len = 0;   ///< whole frame, marker included
  uint64_t row_start = 0;   ///< slowest-dim start
  uint64_t row_extent = 0;  ///< slowest-dim extent (chunk hyperslab)
  uint64_t elem_start = 0;  ///< first element (row_start x plane)
  uint64_t elem_count = 0;  ///< elements (row_extent x plane)
};

/// Random-access metadata for a chunked archive: per-chunk byte spans
/// and element ranges, either read from the seek-table footer (two
/// positioned reads, no prelude scan) or derived from the prelude index
/// of a footer-less archive.
struct SeekTable {
  Dims dims;
  /// Element type, known only when the footer carried it; a table
  /// derived from the prelude index leaves it empty (the index predates
  /// the footer and stores no dtype) — readers learn it from the first
  /// chunk's container header instead.
  std::optional<sz::DType> dtype;
  bool from_footer = false;
  size_t plane = 0;  ///< elements per slowest-dim index
  std::vector<SeekEntry> entries;
};

/// Parses the fixed 8-byte trailer (the archive's LAST kSeekTrailerSize
/// bytes).  nullopt when the trailer magic is absent — a footer-less
/// archive, not an error.  When the magic IS present, an impossible
/// footer length (longer than the bytes in front of the trailer) is
/// CorruptError: the footer existed and was damaged or forged.
std::optional<uint64_t> parse_seek_trailer(BytesView trailer,
                                           uint64_t archive_size);

/// Strictly parses the footer bytes (magic through footer_crc; the
/// trailer excluded) of an archive `archive_size` bytes long.  Every
/// field is untrusted: rows must densely cover dims[0], element ranges
/// must equal rows x plane (a forged overlap/gap/overflow dies here),
/// frame spans must stay inside the frame region, and the CRC must
/// match.  Throws CorruptError on any inconsistency.
SeekTable parse_seek_footer(BytesView footer, uint64_t archive_size);

/// Derives a SeekTable from a strictly parsed prelude index (the
/// backward-compatible path for pre-footer archives).
SeekTable seek_table_from_index(const ChunkIndex& index);

/// In-memory convenience: the archive's SeekTable — from the footer
/// when the trailer signature is present (strict parse; a damaged or
/// forged footer throws CorruptError rather than silently degrading),
/// else derived from read_chunk_index.
SeekTable read_seek_table(BytesView archive);

/// Bytes occupied at the END of `archive` by a structurally plausible
/// seek-table footer + trailer (trailer magic, in-bounds footer length,
/// footer magic + version at the computed start), or 0 when absent.
/// Deliberately NOT a full parse — never throws — so the salvage path
/// can exclude the footer from damage accounting even when dropped or
/// shifted frames have invalidated the footer's offsets.  The frame
/// region of an archive therefore ends at
/// `archive.size() - seek_footer_suffix_bytes(archive)`.
uint64_t seek_footer_suffix_bytes(BytesView archive) noexcept;

/// A frame located in (possibly damaged) archive bytes.  `crc_ok` is the
/// only integrity statement; the field values are sanity-capped but
/// otherwise untrusted until cross-checked against the index or the
/// chunk's own container header.
struct FrameInfo {
  uint64_t chunk_id = 0;
  uint64_t row_start = 0;
  uint64_t row_extent = 0;
  size_t offset = 0;     ///< absolute frame start (marker byte 0)
  size_t frame_len = 0;  ///< marker..container end
  BytesView container;   ///< borrows from the archive bytes
  bool crc_ok = false;
};

/// Parses the frame whose resync marker starts at `pos`; nullopt when
/// the bytes there do not form a plausible frame (truncated, absurd
/// fields).  Shared by the strict decoder, the salvage scanner, and
/// verify_archive, so "what counts as a frame" is defined exactly once.
std::optional<FrameInfo> parse_frame(BytesView archive, size_t pos);

/// Decodes one located frame's container into `into` (the chunk's
/// row_extent x plane elements), validating everything the strict
/// decoder validates: container rows versus frame rows, rank/plane
/// against `field_dims` when provided, dtype against the span's element
/// type.  Returns the empty string on success, else a human-readable
/// reason (wrong key and MAC failures surface as exceptions from the
/// codec, not as a reason string).  `chunk_dims` receives the chunk's
/// own Dims.  Shared by the strict decoder, salvage, and
/// SeekableReader so chunk-level validation is defined exactly once.
std::string decode_chunk_frame(const FrameInfo& frame,
                               core::codec::RuntimeCache& runtimes,
                               BufferPool* pool,
                               const std::optional<Dims>& field_dims,
                               std::span<float> into, Dims& chunk_dims,
                               PipelineMetrics* times = nullptr);
std::string decode_chunk_frame(const FrameInfo& frame,
                               core::codec::RuntimeCache& runtimes,
                               BufferPool* pool,
                               const std::optional<Dims>& field_dims,
                               std::span<double> into, Dims& chunk_dims,
                               PipelineMetrics* times = nullptr);

/// What happened to one chunk during salvage.
enum class ChunkStatus : uint8_t {
  kOk,         ///< decoded at its indexed position, CRC verified
  kRelocated,  ///< decoded after a resync scan (index lost or offsets
               ///< shifted by insertion/deletion/reordering)
  kCorrupt,    ///< frame located but CRC/decode failed
  kMissing,    ///< no frame for this chunk found anywhere
};

const char* to_string(ChunkStatus s);

struct ChunkReport {
  uint64_t chunk_id = 0;
  ChunkStatus status = ChunkStatus::kMissing;
  uint64_t row_start = 0;
  uint64_t row_extent = 0;
  uint64_t frame_bytes = 0;  ///< 0 when missing
  std::string detail;        ///< failure reason, empty when kOk
};

/// Structured outcome of a salvage decode.
struct SalvageReport {
  bool index_intact = false;    ///< prelude + index CRC verified
  uint64_t chunks_expected = 0; ///< from the index, or distinct frames seen
  uint64_t chunks_recovered = 0;
  uint64_t bytes_skipped = 0;   ///< archive bytes not part of a recovered
                                ///< frame (or the intact prelude)
  uint64_t elements_total = 0;
  uint64_t elements_recovered = 0;
  std::vector<ChunkReport> chunks;  ///< one per expected chunk, id order

  bool complete() const { return chunks_recovered == chunks_expected; }
  double recovered_fraction() const {
    return elements_total == 0
               ? 0.0
               : static_cast<double>(elements_recovered) / elements_total;
  }
};

/// Value written into regions whose chunk could not be recovered.
enum class FallbackFill : uint8_t {
  kZeros,
  kNaN,
  kMean,  ///< mean of the elements that *were* recovered (0 if none);
          ///< computed at decode time so nothing plaintext is archived
};

struct SalvageOptions {
  FallbackFill fill = FallbackFill::kMean;
  /// Worker threads for the per-chunk decode phase (0 = default count).
  /// A worker hitting a corrupt chunk reports it in the SalvageReport
  /// and never aborts the run.
  unsigned threads = 0;
};

struct SalvageResult {
  Dims dims;  ///< rank 0 when nothing was recoverable
  /// Element type of the populated vector: f32 for decompress_salvage,
  /// f64 for decompress_salvage_f64.
  sz::DType dtype = sz::DType::kFloat32;
  std::vector<float> f32;   ///< dims.count() elements (empty if rank 0)
  std::vector<double> f64;  ///< populated by decompress_salvage_f64
  SalvageReport report;
};

/// Best-effort decode: recovers every intact chunk from a truncated,
/// bit-flipped, reordered, or chunk-dropped archive and fills lost
/// regions per `opts.fill`.  Never throws on corrupt input — damage is
/// reported in `SalvageResult::report`; an archive with nothing
/// recoverable (not even field dims) yields an empty result.  Throws
/// Error only for caller mistakes (e.g. missing key for an encrypted
/// chunk is reported per chunk, not thrown).
SalvageResult decompress_salvage(BytesView archive, BytesView key,
                                 const SalvageOptions& opts = {});

/// decompress_salvage for float64 archives; chunks holding float32 are
/// reported corrupt (dtype mismatch), mirroring the f32 path's handling
/// of float64 chunks.
SalvageResult decompress_salvage_f64(BytesView archive, BytesView key,
                                     const SalvageOptions& opts = {});

/// Outcome of one streaming salvage.  The recovered field bytes live in
/// the caller's sink; `report` mirrors SalvageResult::report.
struct ChunkedStreamSalvageResult {
  Dims dims;  ///< rank 0 when nothing was recoverable
  sz::DType dtype = sz::DType::kFloat32;
  SalvageReport report;
};

/// Single-pass, bounded-memory salvage of a damaged v3 archive arriving
/// as a stream: scans forward for CRC-valid frames (a sliding window
/// holds at most one frame plus scan slack), decodes each intact chunk
/// serially, and emits recovered rows to `out` in stream order, filling
/// row gaps with `opts.fill`.  Single-pass limits versus
/// decompress_salvage: only the in-order subsequence of frames is
/// recovered (a frame whose rows precede already-emitted rows is
/// reported corrupt, never re-ordered), and FallbackFill::kMean is
/// rejected with Error (the mean of recovered elements is unknowable
/// until the pass ends — use kZeros or kNaN).  opts.threads is ignored;
/// the pass is serial by construction.  Never throws on corrupt input.
ChunkedStreamSalvageResult salvage_chunked_stream(
    ByteSource& in, ByteSink& out, BytesView key,
    const SalvageOptions& opts = {});

}  // namespace szsec::archive
