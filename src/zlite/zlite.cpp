#include "zlite/zlite.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <queue>

#include "common/bitstream.h"
#include "common/error.h"

namespace szsec::zlite {

namespace {

// ---------------------------------------------------------------------------
// RFC 1951 constants.
// ---------------------------------------------------------------------------

constexpr size_t kWindowSize = 32 * 1024;
constexpr size_t kMinMatch = 3;
constexpr size_t kMaxMatch = 258;
constexpr int kNumLitCodes = 286;   // 0..255 literals, 256 EOB, 257..285 len
constexpr int kNumDistCodes = 30;
constexpr int kNumClCodes = 19;
constexpr unsigned kMaxLitBits = 15;
constexpr unsigned kMaxClBits = 7;
constexpr int kEob = 256;

constexpr uint16_t kLenBase[29] = {3,   4,   5,   6,   7,   8,   9,   10,
                                   11,  13,  15,  17,  19,  23,  27,  31,
                                   35,  43,  51,  59,  67,  83,  99,  115,
                                   131, 163, 195, 227, 258};
constexpr uint8_t kLenExtra[29] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2,
                                   2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5,
                                   0};
constexpr uint16_t kDistBase[30] = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr uint8_t kDistExtra[30] = {0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                    4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                    9, 9, 10, 10, 11, 11, 12, 12, 13, 13};
constexpr uint8_t kClOrder[19] = {16, 17, 18, 0, 8,  7, 9,  6, 10, 5,
                                  11, 4,  12, 3, 13, 2, 14, 1, 15};

int length_code(size_t len) {
  // len in [3, 258]
  for (int c = 28; c >= 0; --c) {
    if (len >= kLenBase[c]) return c;
  }
  return 0;
}

int dist_code(size_t dist) {
  for (int c = 29; c >= 0; --c) {
    if (dist >= kDistBase[c]) return c;
  }
  return 0;
}

uint32_t bit_reverse(uint32_t code, unsigned len) {
  uint32_t r = 0;
  for (unsigned i = 0; i < len; ++i) {
    r = (r << 1) | (code & 1);
    code >>= 1;
  }
  return r;
}

// ---------------------------------------------------------------------------
// Length-limited canonical Huffman for the encoder.
// ---------------------------------------------------------------------------

// Computes Huffman code lengths for `freq`, capped to `limit` by frequency
// halving.  Symbols with zero frequency get length 0.
std::vector<uint8_t> limited_lengths(std::span<const uint64_t> freq,
                                     unsigned limit) {
  std::vector<uint64_t> f(freq.begin(), freq.end());
  std::vector<uint8_t> lengths(f.size(), 0);
  while (true) {
    struct Node {
      uint64_t w;
      uint32_t id;
      int32_t l = -1, r = -1;
      int32_t sym = -1;
    };
    std::vector<Node> nodes;
    for (size_t s = 0; s < f.size(); ++s) {
      if (f[s] > 0) {
        nodes.push_back({f[s], static_cast<uint32_t>(nodes.size()), -1, -1,
                         static_cast<int32_t>(s)});
      }
    }
    std::fill(lengths.begin(), lengths.end(), 0);
    if (nodes.empty()) return lengths;
    if (nodes.size() == 1) {
      lengths[nodes[0].sym] = 1;
      return lengths;
    }
    auto cmp = [&nodes](int32_t a, int32_t b) {
      if (nodes[a].w != nodes[b].w) return nodes[a].w > nodes[b].w;
      return nodes[a].id > nodes[b].id;
    };
    std::priority_queue<int32_t, std::vector<int32_t>, decltype(cmp)> heap(
        cmp);
    for (size_t i = 0; i < nodes.size(); ++i) {
      heap.push(static_cast<int32_t>(i));
    }
    while (heap.size() > 1) {
      int32_t a = heap.top();
      heap.pop();
      int32_t b = heap.top();
      heap.pop();
      nodes.push_back({nodes[a].w + nodes[b].w,
                       static_cast<uint32_t>(nodes.size()), a, b, -1});
      heap.push(static_cast<int32_t>(nodes.size() - 1));
    }
    unsigned max_len = 0;
    std::vector<std::pair<int32_t, unsigned>> stack{
        {heap.top(), 0u}};
    while (!stack.empty()) {
      auto [idx, depth] = stack.back();
      stack.pop_back();
      const Node& n = nodes[idx];
      if (n.sym >= 0) {
        lengths[n.sym] = static_cast<uint8_t>(depth);
        max_len = std::max(max_len, depth);
      } else {
        stack.push_back({n.l, depth + 1});
        stack.push_back({n.r, depth + 1});
      }
    }
    if (max_len <= limit) return lengths;
    for (auto& x : f) {
      if (x > 1) x = (x + 1) / 2;  // keep nonzero symbols alive
    }
  }
}

// Canonical codewords (already bit-reversed for LSB-first emission).
std::vector<uint32_t> canonical_codes(std::span<const uint8_t> lengths,
                                      unsigned max_bits) {
  std::vector<uint32_t> count(max_bits + 1, 0);
  for (uint8_t l : lengths) {
    if (l > 0) ++count[l];
  }
  std::vector<uint32_t> next(max_bits + 1, 0);
  uint32_t code = 0;
  for (unsigned l = 1; l <= max_bits; ++l) {
    code = (code + count[l - 1]) << 1;
    next[l] = code;
  }
  std::vector<uint32_t> codes(lengths.size(), 0);
  for (size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > 0) codes[s] = bit_reverse(next[lengths[s]]++, lengths[s]);
  }
  return codes;
}

// ---------------------------------------------------------------------------
// LZ77 tokenizer with hash chains (zlib-style).
// ---------------------------------------------------------------------------

struct Token {
  uint32_t dist;  // 0 => literal
  uint16_t len;   // literal byte if dist == 0
};

class Matcher {
 public:
  explicit Matcher(BytesView data, Level level)
      : data_(data), level_(level) {
    head_.assign(kHashSize, -1);
    prev_.assign(data.size() < kWindowSize ? data.size() : kWindowSize, -1);
  }

  // Tokenizes data[begin, end) appending to `out`.
  void tokenize(size_t begin, size_t end, std::vector<Token>& out) {
    size_t pos = begin;
    // Lazy-match state: a pending match from the previous position.
    bool have_prev = false;
    size_t prev_len = 0, prev_dist = 0;

    while (pos < end) {
      size_t len = 0, dist = 0;
      if (level_ != Level::kStored && pos + kMinMatch <= data_.size()) {
        // Matches must not cross the chunk end: each emit_block() pairs the
        // token list with exactly data[begin, end).
        find_match(pos, end - pos, len, dist);
      }
      if (level_ == Level::kDefault) {
        // Lazy evaluation: emit the previous match only if the current one
        // isn't strictly better.
        if (have_prev) {
          if (len > prev_len) {
            // Previous position becomes a literal; keep searching from here.
            out.push_back({0, data_[pos - 1]});
          } else {
            out.push_back({static_cast<uint32_t>(prev_dist),
                           static_cast<uint16_t>(prev_len)});
            // Skip over the matched bytes (minus the one lookahead already
            // consumed), inserting hash entries along the way.
            const size_t match_end = (pos - 1) + prev_len;
            while (pos < match_end && pos < end) {
              insert_hash(pos);
              ++pos;
            }
            have_prev = false;
            continue;
          }
          have_prev = false;
        }
        if (len >= kMinMatch && pos + 1 < end) {
          // Defer: look one byte ahead before committing.
          have_prev = true;
          prev_len = len;
          prev_dist = dist;
          insert_hash(pos);
          ++pos;
          continue;
        }
      }
      if (len >= kMinMatch) {
        out.push_back(
            {static_cast<uint32_t>(dist), static_cast<uint16_t>(len)});
        const size_t match_end = pos + len;
        while (pos < match_end && pos < end) {
          insert_hash(pos);
          ++pos;
        }
      } else {
        out.push_back({0, data_[pos]});
        insert_hash(pos);
        ++pos;
      }
    }
    if (have_prev) {
      // Flush a deferred match that reached the chunk boundary.
      out.push_back({static_cast<uint32_t>(prev_dist),
                     static_cast<uint16_t>(prev_len)});
      // The hash entries for its tail don't matter past `end`.
    }
  }

 private:
  static constexpr size_t kHashBits = 15;
  static constexpr size_t kHashSize = 1u << kHashBits;
  static constexpr int kMaxChain = 128;

  uint32_t hash_at(size_t pos) const {
    uint32_t h = 0;
    std::memcpy(&h, data_.data() + pos, 3);
    return (h * 2654435761u) >> (32 - kHashBits);
  }

  void insert_hash(size_t pos) {
    if (pos + kMinMatch > data_.size()) return;
    const uint32_t h = hash_at(pos);
    prev_[pos % prev_.size()] = head_[h];
    head_[h] = static_cast<int64_t>(pos);
  }

  void find_match(size_t pos, size_t limit, size_t& best_len,
                  size_t& best_dist) const {
    best_len = 0;
    best_dist = 0;
    const size_t max_len =
        std::min({kMaxMatch, data_.size() - pos, limit});
    if (max_len < kMinMatch) return;
    int64_t cand = head_[hash_at(pos)];
    int chain = kMaxChain;
    const size_t min_pos = pos >= kWindowSize ? pos - kWindowSize : 0;
    while (cand >= 0 && static_cast<size_t>(cand) >= min_pos &&
           chain-- > 0) {
      const size_t c = static_cast<size_t>(cand);
      if (c < pos) {
        // Quick reject on the byte that would extend the current best.
        if (best_len == 0 ||
            data_[c + best_len] == data_[pos + best_len]) {
          size_t l = 0;
          while (l < max_len && data_[c + l] == data_[pos + l]) ++l;
          if (l > best_len) {
            best_len = l;
            best_dist = pos - c;
            if (l >= max_len) break;
          }
        }
      }
      cand = prev_[c % prev_.size()];
    }
    if (best_len < kMinMatch) {
      best_len = 0;
      best_dist = 0;
    }
  }

  BytesView data_;
  Level level_;
  std::vector<int64_t> head_;
  std::vector<int64_t> prev_;
};

// ---------------------------------------------------------------------------
// Block emission.
// ---------------------------------------------------------------------------

struct BlockCodes {
  std::vector<uint8_t> lit_len, dist_len;
  std::vector<uint32_t> lit_code, dist_code;
};

// Fixed Huffman code per RFC 1951 3.2.6.
const BlockCodes& fixed_codes() {
  static const BlockCodes codes = [] {
    BlockCodes c;
    c.lit_len.resize(288);
    for (int i = 0; i <= 143; ++i) c.lit_len[i] = 8;
    for (int i = 144; i <= 255; ++i) c.lit_len[i] = 9;
    for (int i = 256; i <= 279; ++i) c.lit_len[i] = 7;
    for (int i = 280; i <= 287; ++i) c.lit_len[i] = 8;
    c.dist_len.assign(30, 5);
    c.lit_code = canonical_codes(c.lit_len, kMaxLitBits);
    c.dist_code = canonical_codes(c.dist_len, kMaxLitBits);
    return c;
  }();
  return codes;
}

// RLE of the combined lit+dist code-length array using symbols 16/17/18.
struct ClSymbol {
  uint8_t sym;
  uint8_t extra_val;
};

std::vector<ClSymbol> rle_code_lengths(std::span<const uint8_t> lengths) {
  std::vector<ClSymbol> out;
  size_t i = 0;
  while (i < lengths.size()) {
    const uint8_t l = lengths[i];
    size_t run = 1;
    while (i + run < lengths.size() && lengths[i + run] == l) ++run;
    if (l == 0) {
      size_t left = run;
      while (left >= 11) {
        const size_t n = std::min<size_t>(left, 138);
        out.push_back({18, static_cast<uint8_t>(n - 11)});
        left -= n;
      }
      while (left >= 3) {
        const size_t n = std::min<size_t>(left, 10);
        out.push_back({17, static_cast<uint8_t>(n - 3)});
        left -= n;
      }
      while (left-- > 0) out.push_back({0, 0});
    } else {
      out.push_back({l, 0});
      size_t left = run - 1;
      while (left >= 3) {
        const size_t n = std::min<size_t>(left, 6);
        out.push_back({16, static_cast<uint8_t>(n - 3)});
        left -= n;
      }
      while (left-- > 0) out.push_back({l, 0});
    }
    i += run;
  }
  return out;
}

void emit_tokens(LsbBitWriter& w, const std::vector<Token>& tokens,
                 const BlockCodes& c) {
  for (const Token& t : tokens) {
    if (t.dist == 0) {
      w.put_bits(c.lit_code[t.len], c.lit_len[t.len]);
    } else {
      const int lc = length_code(t.len);
      w.put_bits(c.lit_code[257 + lc], c.lit_len[257 + lc]);
      if (kLenExtra[lc] > 0) {
        w.put_bits(t.len - kLenBase[lc], kLenExtra[lc]);
      }
      const int dc = dist_code(t.dist);
      w.put_bits(c.dist_code[dc], c.dist_len[dc]);
      if (kDistExtra[dc] > 0) {
        w.put_bits(t.dist - kDistBase[dc], kDistExtra[dc]);
      }
    }
  }
  w.put_bits(c.lit_code[kEob], c.lit_len[kEob]);
}

// Bit cost of the token stream under given code lengths.
size_t token_cost_bits(const std::vector<Token>& tokens,
                       std::span<const uint8_t> lit_len,
                       std::span<const uint8_t> dist_len) {
  size_t bits = 0;
  for (const Token& t : tokens) {
    if (t.dist == 0) {
      bits += lit_len[t.len];
    } else {
      const int lc = length_code(t.len);
      bits += lit_len[257 + lc] + kLenExtra[lc];
      const int dc = dist_code(t.dist);
      bits += dist_len[dc] + kDistExtra[dc];
    }
  }
  bits += lit_len[kEob];
  return bits;
}

void emit_stored(LsbBitWriter& w, BytesView raw, bool final_block) {
  size_t off = 0;
  do {
    const size_t n = std::min<size_t>(raw.size() - off, 65535);
    const bool last = final_block && (off + n == raw.size());
    w.put_bits(last ? 1 : 0, 1);
    w.put_bits(0, 2);  // BTYPE=00
    w.align_to_byte();
    w.put_bits(n, 16);
    w.put_bits(~n & 0xFFFF, 16);
    w.put_bytes(raw.subspan(off, n));
    off += n;
  } while (off < raw.size());
}

void emit_block(LsbBitWriter& w, BytesView raw,
                const std::vector<Token>& tokens, bool final_block) {
  // Build dynamic code.
  std::vector<uint64_t> lit_freq(kNumLitCodes, 0);
  std::vector<uint64_t> dist_freq(kNumDistCodes, 0);
  for (const Token& t : tokens) {
    if (t.dist == 0) {
      ++lit_freq[t.len];
    } else {
      ++lit_freq[257 + length_code(t.len)];
      ++dist_freq[dist_code(t.dist)];
    }
  }
  ++lit_freq[kEob];

  std::vector<uint8_t> lit_len = limited_lengths(lit_freq, kMaxLitBits);
  std::vector<uint8_t> dist_len = limited_lengths(dist_freq, kMaxLitBits);
  // DEFLATE requires at least one distance code to be describable.
  if (std::all_of(dist_len.begin(), dist_len.end(),
                  [](uint8_t l) { return l == 0; })) {
    dist_len[0] = 1;
  }

  // Trim trailing zero lengths (but respect the format minimums).
  int nlit = kNumLitCodes;
  while (nlit > 257 && lit_len[nlit - 1] == 0) --nlit;
  int ndist = kNumDistCodes;
  while (ndist > 1 && dist_len[ndist - 1] == 0) --ndist;

  // Code-length alphabet.
  std::vector<uint8_t> combined(lit_len.begin(), lit_len.begin() + nlit);
  combined.insert(combined.end(), dist_len.begin(), dist_len.begin() + ndist);
  const auto cl_syms = rle_code_lengths(combined);
  std::vector<uint64_t> cl_freq(kNumClCodes, 0);
  for (const ClSymbol& s : cl_syms) ++cl_freq[s.sym];
  std::vector<uint8_t> cl_len = limited_lengths(cl_freq, kMaxClBits);
  const auto cl_code = canonical_codes(cl_len, kMaxClBits);

  int ncl = kNumClCodes;
  while (ncl > 4 && cl_len[kClOrder[ncl - 1]] == 0) --ncl;

  // Cost comparison: dynamic vs fixed vs stored.
  size_t header_bits = 14 + 3u * ncl;
  for (const ClSymbol& s : cl_syms) {
    header_bits += cl_len[s.sym];
    if (s.sym == 16) header_bits += 2;
    if (s.sym == 17) header_bits += 3;
    if (s.sym == 18) header_bits += 7;
  }
  const size_t dyn_bits =
      3 + header_bits + token_cost_bits(tokens, lit_len, dist_len);
  const auto& fx = fixed_codes();
  const size_t fix_bits =
      3 + token_cost_bits(tokens, fx.lit_len, fx.dist_len);
  const size_t stored_bits =
      (raw.size() + (raw.size() + 65534) / 65535 * 5 + 4) * 8;

  if (stored_bits < dyn_bits && stored_bits < fix_bits) {
    emit_stored(w, raw, final_block);
    return;
  }

  w.put_bits(final_block ? 1 : 0, 1);
  if (fix_bits <= dyn_bits) {
    w.put_bits(1, 2);  // BTYPE=01 fixed
    emit_tokens(w, tokens, fx);
    return;
  }

  w.put_bits(2, 2);  // BTYPE=10 dynamic
  w.put_bits(nlit - 257, 5);
  w.put_bits(ndist - 1, 5);
  w.put_bits(ncl - 4, 4);
  for (int i = 0; i < ncl; ++i) w.put_bits(cl_len[kClOrder[i]], 3);
  for (const ClSymbol& s : cl_syms) {
    w.put_bits(cl_code[s.sym], cl_len[s.sym]);
    if (s.sym == 16) w.put_bits(s.extra_val, 2);
    if (s.sym == 17) w.put_bits(s.extra_val, 3);
    if (s.sym == 18) w.put_bits(s.extra_val, 7);
  }
  BlockCodes dyn;
  dyn.lit_len = std::move(lit_len);
  dyn.dist_len = std::move(dist_len);
  dyn.lit_code = canonical_codes(dyn.lit_len, kMaxLitBits);
  dyn.dist_code = canonical_codes(dyn.dist_len, kMaxLitBits);
  emit_tokens(w, tokens, dyn);
}

// ---------------------------------------------------------------------------
// Inflate.
// ---------------------------------------------------------------------------

// Canonical (MSB-first code value) decoder over an LSB-first bit stream.
class CanonicalDecoder {
 public:
  CanonicalDecoder(std::span<const uint8_t> lengths, unsigned max_bits)
      : max_bits_(max_bits) {
    count_.assign(max_bits + 1, 0);
    for (uint8_t l : lengths) {
      SZSEC_CHECK_FORMAT(l <= max_bits, "code length exceeds limit");
      if (l > 0) ++count_[l];
    }
    first_code_.assign(max_bits + 2, 0);
    first_index_.assign(max_bits + 2, 0);
    uint32_t code = 0, index = 0;
    uint64_t kraft = 0;
    for (unsigned l = 1; l <= max_bits; ++l) {
      code = (code + count_[l - 1]) << 1;
      first_code_[l] = code;
      first_index_[l] = index;
      index += count_[l];
      kraft += static_cast<uint64_t>(count_[l]) << (max_bits - l);
    }
    SZSEC_CHECK_FORMAT(kraft <= (uint64_t{1} << max_bits),
                       "over-subscribed Huffman code");
    sorted_.reserve(index);
    for (unsigned l = 1; l <= max_bits; ++l) {
      for (size_t s = 0; s < lengths.size(); ++s) {
        if (lengths[s] == l) sorted_.push_back(static_cast<uint32_t>(s));
      }
    }
  }

  uint32_t decode(LsbBitReader& r) const {
    uint32_t code = 0;
    for (unsigned len = 1; len <= max_bits_; ++len) {
      code = (code << 1) | r.get_bit();
      if (count_[len] != 0 && code - first_code_[len] < count_[len]) {
        return sorted_[first_index_[len] + (code - first_code_[len])];
      }
    }
    throw CorruptError("corrupt: invalid Huffman code in stream");
  }

 private:
  unsigned max_bits_;
  std::vector<uint32_t> count_, first_code_, first_index_;
  std::vector<uint32_t> sorted_;
};

void inflate_tokens(LsbBitReader& r, const CanonicalDecoder& lit,
                    const CanonicalDecoder& dist, Bytes& out,
                    size_t max_size) {
  while (true) {
    const uint32_t sym = lit.decode(r);
    if (sym < 256) {
      SZSEC_CHECK_FORMAT(max_size == 0 || out.size() < max_size,
                         "inflated output exceeds declared size cap");
      out.push_back(static_cast<uint8_t>(sym));
    } else if (sym == kEob) {
      return;
    } else {
      SZSEC_CHECK_FORMAT(sym - 257 < 29, "bad length code");
      const int lc = static_cast<int>(sym - 257);
      const size_t len =
          kLenBase[lc] + static_cast<size_t>(r.get_bits(kLenExtra[lc]));
      const uint32_t dsym = dist.decode(r);
      SZSEC_CHECK_FORMAT(dsym < 30, "bad distance code");
      const size_t d =
          kDistBase[dsym] + static_cast<size_t>(r.get_bits(kDistExtra[dsym]));
      SZSEC_CHECK_FORMAT(d <= out.size(), "distance beyond output start");
      SZSEC_CHECK_FORMAT(max_size == 0 || len <= max_size - out.size(),
                         "inflated output exceeds declared size cap");
      // Byte-at-a-time copy handles overlapping matches correctly.
      const size_t start = out.size() - d;
      for (size_t i = 0; i < len; ++i) out.push_back(out[start + i]);
    }
  }
}

}  // namespace

Bytes deflate(BytesView data, Level level) {
  LsbBitWriter w;
  if (data.empty()) {
    // One empty stored final block.
    emit_stored(w, data, true);
    return w.finish();
  }
  if (level == Level::kStored) {
    emit_stored(w, data, true);
    return w.finish();
  }

  // Chunked compression: one block per kChunk of input bytes, so dynamic
  // Huffman codes adapt to local statistics (as zlib does).
  constexpr size_t kChunk = 256 * 1024;
  Matcher matcher(data, level);
  std::vector<Token> tokens;
  for (size_t off = 0; off < data.size(); off += kChunk) {
    const size_t end = std::min(data.size(), off + kChunk);
    tokens.clear();
    matcher.tokenize(off, end, tokens);
    emit_block(w, data.subspan(off, end - off), tokens,
               /*final_block=*/end == data.size());
  }
  return w.finish();
}

Bytes inflate(BytesView data, size_t size_hint, size_t max_size) {
  Bytes out;
  inflate_into(data, out, size_hint, max_size);
  return out;
}

void inflate_into(BytesView data, Bytes& out, size_t size_hint,
                  size_t max_size) {
  LsbBitReader r(data);
  out.clear();
  const size_t want = max_size != 0 ? std::min(size_hint, max_size)
                                    : size_hint;
  if (want > out.capacity()) out.reserve(want);
  bool final_block = false;
  do {
    final_block = r.get_bit() != 0;
    const uint64_t btype = r.get_bits(2);
    if (btype == 0) {
      r.align_to_byte();
      const uint64_t len = r.get_bits(16);
      const uint64_t nlen = r.get_bits(16);
      SZSEC_CHECK_FORMAT((len ^ nlen) == 0xFFFF, "stored block LEN mismatch");
      SZSEC_CHECK_FORMAT(max_size == 0 || len <= max_size - out.size(),
                         "inflated output exceeds declared size cap");
      const BytesView raw = r.get_bytes(static_cast<size_t>(len));
      out.insert(out.end(), raw.begin(), raw.end());
    } else if (btype == 1) {
      const auto& fx = fixed_codes();
      const CanonicalDecoder lit(fx.lit_len, kMaxLitBits);
      const CanonicalDecoder dist(fx.dist_len, kMaxLitBits);
      inflate_tokens(r, lit, dist, out, max_size);
    } else if (btype == 2) {
      const int nlit = static_cast<int>(r.get_bits(5)) + 257;
      const int ndist = static_cast<int>(r.get_bits(5)) + 1;
      const int ncl = static_cast<int>(r.get_bits(4)) + 4;
      SZSEC_CHECK_FORMAT(nlit <= kNumLitCodes + 2 && ndist <= kNumDistCodes + 2,
                         "bad code counts");
      std::vector<uint8_t> cl_len(kNumClCodes, 0);
      for (int i = 0; i < ncl; ++i) {
        cl_len[kClOrder[i]] = static_cast<uint8_t>(r.get_bits(3));
      }
      const CanonicalDecoder cl(cl_len, kMaxClBits);
      std::vector<uint8_t> lengths;
      lengths.reserve(static_cast<size_t>(nlit + ndist));
      while (lengths.size() < static_cast<size_t>(nlit + ndist)) {
        const uint32_t s = cl.decode(r);
        if (s < 16) {
          lengths.push_back(static_cast<uint8_t>(s));
        } else if (s == 16) {
          SZSEC_CHECK_FORMAT(!lengths.empty(), "repeat with no previous");
          const uint8_t prev = lengths.back();
          const uint64_t n = 3 + r.get_bits(2);
          lengths.insert(lengths.end(), static_cast<size_t>(n), prev);
        } else if (s == 17) {
          const uint64_t n = 3 + r.get_bits(3);
          lengths.insert(lengths.end(), static_cast<size_t>(n), 0);
        } else {
          const uint64_t n = 11 + r.get_bits(7);
          lengths.insert(lengths.end(), static_cast<size_t>(n), 0);
        }
      }
      SZSEC_CHECK_FORMAT(lengths.size() == static_cast<size_t>(nlit + ndist),
                         "code length overrun");
      const std::span<const uint8_t> lit_span(lengths.data(),
                                              static_cast<size_t>(nlit));
      const std::span<const uint8_t> dist_span(
          lengths.data() + nlit, static_cast<size_t>(ndist));
      const CanonicalDecoder lit(lit_span, kMaxLitBits);
      const CanonicalDecoder dist(dist_span, kMaxLitBits);
      inflate_tokens(r, lit, dist, out, max_size);
    } else {
      throw CorruptError("corrupt: reserved block type");
    }
  } while (!final_block);
}

}  // namespace szsec::zlite
