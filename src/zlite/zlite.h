// zlite: a from-scratch DEFLATE-style (RFC 1951) lossless codec.
//
// This is the substitute for the Zlib pass SZ-1.4 runs as its fourth stage.
// It matters for the paper's results in two ways:
//  * Encr-Quant encrypts the Huffman-coded quantization array *before* this
//    pass; the resulting near-8-bit/byte entropy makes LZ77 find no matches
//    and the dynamic Huffman stage gain nothing, collapsing the compression
//    ratio — exactly the paper's Figure 5 effect.
//  * Encr-Huffman randomizes only the small tree blob, which costs the
//    lossless pass almost nothing (Figure 5) and even saves match-search
//    time on those bytes (Table V's sub-100% overheads).
//
// The format is bit-compatible in spirit with DEFLATE: stored / fixed /
// dynamic blocks, 32 KiB window, match lengths 3..258, LSB-first bits.
#pragma once

#include "common/bytestream.h"

namespace szsec::zlite {

/// Compression effort.
enum class Level : int {
  kStored = 0,  ///< no compression (stored blocks only)
  kFast = 1,    ///< greedy matching
  kDefault = 2  ///< lazy matching (one-byte lookahead)
};

/// Compresses `data`.  Always succeeds; incompressible input grows by a
/// few bytes per 64 KiB block at most.
Bytes deflate(BytesView data, Level level = Level::kDefault);

/// Decompresses a zlite stream.  Throws CorruptError on malformed input.
/// `size_hint` (optional) preallocates the output buffer.  `max_size`
/// (0 = unlimited) caps the output: a stream that would inflate past it
/// throws CorruptError instead of allocating unboundedly, which is the
/// decompression-bomb guard for decoders that know a plausible output
/// size up front (the szsec container does — see SecureCompressor).
Bytes inflate(BytesView data, size_t size_hint = 0, size_t max_size = 0);

/// inflate() into a caller-owned buffer: `out` is cleared and filled,
/// reusing its existing capacity.  Lets pooled scratch buffers (see
/// common/bufpool.h) absorb the per-chunk allocation of archive decode
/// paths.
void inflate_into(BytesView data, Bytes& out, size_t size_hint = 0,
                  size_t max_size = 0);

}  // namespace szsec::zlite
