// Canonical Huffman coding over an arbitrary uint32 symbol alphabet.
//
// This is SZ's stage-3 variable-length encoder.  The serialized code table
// (colloquially "the Huffman tree" — it fully determines the tree) is the
// exact byte blob that the paper's Encr-Huffman scheme encrypts: without
// it, recovering the quantization bins from the codeword stream is NP-hard
// (Gillman et al., "On breaking a Huffman code").
//
// Codes are canonical: lengths come from a package-style Huffman build
// (with automatic frequency scaling to respect kMaxCodeLength), and
// codewords are assigned in (length, symbol) order.  Only the lengths are
// serialized, keeping the table small — the paper's Figure 4 observes the
// tree stays below ~4.5% of the quantization array, which this format
// preserves.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitstream.h"
#include "common/bytestream.h"

namespace szsec::huffman {

/// Upper bound on codeword length; frequencies are rescaled if the
/// unrestricted Huffman tree would exceed it.
inline constexpr unsigned kMaxCodeLength = 32;

/// Width of the flat probe table used by the fast decoder: each lookup
/// indexes with the next kDecodeTableBits stream bits and yields every
/// whole codeword inside that window (up to kMaxSymbolsPerProbe).
/// Quantization codes cluster tightly around the zero bin, so typical
/// codewords are 2-5 bits and one probe resolves 2-3 symbols.
inline constexpr unsigned kDecodeTableBits = 11;

/// Most symbols a single probe-table entry can carry.
inline constexpr unsigned kMaxSymbolsPerProbe = 3;

/// decode() falls back to decode_tree_walk() below this symbol count,
/// where building the 2^kDecodeTableBits probe table costs more than it
/// saves.
inline constexpr size_t kProbeDecodeMinSymbols = 4096;

/// Canonical code table: per-symbol code lengths plus derived codewords.
struct CodeTable {
  /// lengths[s] == 0 means symbol s never occurs.
  std::vector<uint8_t> lengths;
  /// Canonical codeword bits for each symbol (valid when lengths[s] > 0).
  std::vector<uint32_t> codes;

  size_t alphabet_size() const { return lengths.size(); }

  /// Number of symbols with a nonzero code.
  size_t used_symbols() const;

  /// Derives canonical codewords from lengths.  Throws on an invalid
  /// (Kraft-violating) length set.
  static CodeTable from_lengths(std::vector<uint8_t> lengths);
};

/// Builds optimal (length-limited) code lengths from symbol frequencies.
CodeTable build_code_table(std::span<const uint64_t> frequencies);

/// Serializes a code table to the compact blob Encr-Huffman encrypts.
/// Format: varint alphabet size, varint run-length-encoded lengths.
Bytes serialize_table(const CodeTable& table);

/// Inverse of serialize_table.  Throws CorruptError on malformed input.
CodeTable deserialize_table(BytesView blob);

/// Encodes `symbols` with `table`; returns MSB-first packed bits.
/// Every symbol must have a nonzero code length.
Bytes encode(const CodeTable& table, std::span<const uint32_t> symbols);

/// Decodes exactly `count` symbols from `bits`.
/// Throws CorruptError if the stream is exhausted or hits a dead branch.
///
/// Large streams take a table-driven fast path: a flat probe table
/// (kDecodeTableBits wide) decodes several symbols per lookup from a
/// 64-bit accumulator, falling back to the exact canonical walk for
/// over-long codewords and the stream tail.  Output and error behavior
/// are identical to decode_tree_walk() on every input.
std::vector<uint32_t> decode(const CodeTable& table, BytesView bits,
                             size_t count);

/// Reference decoder: bit-by-bit canonical walk, no probe table.  Always
/// available; decode() must match it byte-for-byte (asserted by
/// tests/kernel_dispatch_test.cpp and the golden-container pins).
std::vector<uint32_t> decode_tree_walk(const CodeTable& table, BytesView bits,
                                       size_t count);

/// Exact encoded size in bits for `symbols` under `table` (no encoding).
size_t encoded_bits(const CodeTable& table, std::span<const uint32_t> symbols);

}  // namespace szsec::huffman
