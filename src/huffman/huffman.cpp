#include "huffman/huffman.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <queue>

#include "common/error.h"

namespace szsec::huffman {

size_t CodeTable::used_symbols() const {
  size_t n = 0;
  for (uint8_t l : lengths) n += (l != 0);
  return n;
}

namespace {

// Computes unrestricted Huffman code lengths for the nonzero frequencies
// via the classic two-queue/heap merge.  Returns max length encountered.
unsigned huffman_lengths(std::span<const uint64_t> freq,
                         std::vector<uint8_t>& lengths) {
  struct Node {
    uint64_t weight;
    uint32_t id;  // tie-break for determinism
    int32_t left = -1, right = -1;
    uint32_t symbol = 0;  // valid for leaves
    bool leaf = false;
  };
  std::vector<Node> nodes;
  nodes.reserve(freq.size() * 2);
  for (size_t s = 0; s < freq.size(); ++s) {
    if (freq[s] > 0) {
      nodes.push_back({freq[s], static_cast<uint32_t>(nodes.size()), -1, -1,
                       static_cast<uint32_t>(s), true});
    }
  }
  lengths.assign(freq.size(), 0);
  if (nodes.empty()) return 0;
  if (nodes.size() == 1) {
    // A degenerate alphabet still needs one bit per symbol so the decoder
    // can count symbols.
    lengths[nodes[0].symbol] = 1;
    return 1;
  }

  auto cmp = [&nodes](int32_t a, int32_t b) {
    if (nodes[a].weight != nodes[b].weight) {
      return nodes[a].weight > nodes[b].weight;
    }
    return nodes[a].id > nodes[b].id;
  };
  std::priority_queue<int32_t, std::vector<int32_t>, decltype(cmp)> heap(cmp);
  for (size_t i = 0; i < nodes.size(); ++i) {
    heap.push(static_cast<int32_t>(i));
  }
  while (heap.size() > 1) {
    const int32_t a = heap.top();
    heap.pop();
    const int32_t b = heap.top();
    heap.pop();
    Node parent;
    parent.weight = nodes[a].weight + nodes[b].weight;
    parent.id = static_cast<uint32_t>(nodes.size());
    parent.left = a;
    parent.right = b;
    nodes.push_back(parent);
    heap.push(static_cast<int32_t>(nodes.size() - 1));
  }
  const int32_t root = heap.top();

  // Iterative depth assignment.
  unsigned max_len = 0;
  std::vector<std::pair<int32_t, unsigned>> stack{{root, 0}};
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& n = nodes[idx];
    if (n.leaf) {
      SZSEC_REQUIRE(depth <= 255, "code length overflow");
      lengths[n.symbol] = static_cast<uint8_t>(depth);
      max_len = std::max(max_len, depth);
    } else {
      stack.push_back({n.left, depth + 1});
      stack.push_back({n.right, depth + 1});
    }
  }
  return max_len;
}

}  // namespace

CodeTable build_code_table(std::span<const uint64_t> frequencies) {
  std::vector<uint8_t> lengths;
  std::vector<uint64_t> scaled(frequencies.begin(), frequencies.end());
  // Rescale until the tree respects kMaxCodeLength.  Halving (with a floor
  // of 1 to keep symbols alive) provably terminates: eventually all
  // nonzero frequencies are 1 and the tree is balanced.
  while (huffman_lengths(scaled, lengths) > kMaxCodeLength) {
    for (auto& f : scaled) {
      if (f > 0) f = (f + 1) / 2;
    }
  }
  return CodeTable::from_lengths(std::move(lengths));
}

CodeTable CodeTable::from_lengths(std::vector<uint8_t> lengths) {
  CodeTable t;
  t.lengths = std::move(lengths);
  t.codes.assign(t.lengths.size(), 0);

  // Kraft check + canonical assignment in (length, symbol) order.
  std::vector<uint32_t> count(kMaxCodeLength + 1, 0);
  for (uint8_t l : t.lengths) {
    SZSEC_CHECK_FORMAT(l <= kMaxCodeLength, "code length exceeds limit");
    if (l > 0) ++count[l];
  }
  uint64_t kraft = 0;
  for (unsigned l = 1; l <= kMaxCodeLength; ++l) {
    kraft += static_cast<uint64_t>(count[l]) << (kMaxCodeLength - l);
  }
  const uint64_t kraft_limit = uint64_t{1} << kMaxCodeLength;
  SZSEC_CHECK_FORMAT(kraft <= kraft_limit, "Kraft inequality violated");

  std::vector<uint32_t> next_code(kMaxCodeLength + 2, 0);
  uint32_t code = 0;
  for (unsigned l = 1; l <= kMaxCodeLength; ++l) {
    code = (code + count[l - 1]) << 1;
    next_code[l] = code;
  }
  for (size_t s = 0; s < t.lengths.size(); ++s) {
    const uint8_t l = t.lengths[s];
    if (l > 0) t.codes[s] = next_code[l]++;
  }
  return t;
}

Bytes serialize_table(const CodeTable& table) {
  // Run-length encode the length array: scientific quantization arrays have
  // long zero runs (most bins unused), so RLE keeps the tree blob small.
  ByteWriter w;
  w.put_varint(table.lengths.size());
  size_t i = 0;
  while (i < table.lengths.size()) {
    const uint8_t l = table.lengths[i];
    size_t run = 1;
    while (i + run < table.lengths.size() && table.lengths[i + run] == l) {
      ++run;
    }
    w.put_u8(l);
    w.put_varint(run);
    i += run;
  }
  return w.take();
}

CodeTable deserialize_table(BytesView blob) {
  ByteReader r(blob);
  const uint64_t alphabet = r.get_varint();
  SZSEC_CHECK_FORMAT(alphabet <= (uint64_t{1} << 28),
                     "implausible alphabet size");
  std::vector<uint8_t> lengths;
  lengths.reserve(static_cast<size_t>(alphabet));
  while (lengths.size() < alphabet) {
    const uint8_t l = r.get_u8();
    const uint64_t run = r.get_varint();
    SZSEC_CHECK_FORMAT(run > 0 && lengths.size() + run <= alphabet,
                       "bad run length in code table");
    lengths.insert(lengths.end(), static_cast<size_t>(run), l);
  }
  SZSEC_CHECK_FORMAT(r.done(), "trailing bytes after code table");
  return CodeTable::from_lengths(std::move(lengths));
}

Bytes encode(const CodeTable& table, std::span<const uint32_t> symbols) {
  BitWriter w;
  for (uint32_t s : symbols) {
    SZSEC_REQUIRE(s < table.lengths.size() && table.lengths[s] > 0,
                  "symbol has no code");
    w.put_bits(table.codes[s], table.lengths[s]);
  }
  return w.finish();
}

size_t encoded_bits(const CodeTable& table,
                    std::span<const uint32_t> symbols) {
  size_t bits = 0;
  for (uint32_t s : symbols) {
    SZSEC_REQUIRE(s < table.lengths.size() && table.lengths[s] > 0,
                  "symbol has no code");
    bits += table.lengths[s];
  }
  return bits;
}

namespace {

// Canonical-decode context: the first-code boundary per length plus the
// symbols in (length, symbol) order, shared by both decode paths.
struct Canonical {
  std::vector<uint32_t> first_code;
  std::vector<uint32_t> first_index;
  std::vector<uint32_t> lcount;
  std::vector<uint32_t> sorted;
};

Canonical build_canonical(const CodeTable& table) {
  Canonical c;
  c.first_code.assign(kMaxCodeLength + 2, 0);
  c.first_index.assign(kMaxCodeLength + 2, 0);
  c.lcount.assign(kMaxCodeLength + 1, 0);
  for (uint8_t l : table.lengths) {
    if (l > 0) ++c.lcount[l];
  }
  c.sorted.reserve(table.used_symbols());
  for (unsigned l = 1; l <= kMaxCodeLength; ++l) {
    for (size_t s = 0; s < table.lengths.size(); ++s) {
      if (table.lengths[s] == l) c.sorted.push_back(static_cast<uint32_t>(s));
    }
  }
  uint32_t code = 0, index = 0;
  for (unsigned l = 1; l <= kMaxCodeLength; ++l) {
    code = (code + c.lcount[l - 1]) << 1;
    c.first_code[l] = code;
    c.first_index[l] = index;
    index += c.lcount[l];
  }
  return c;
}

// Every symbol consumes at least one bit, so a count beyond the
// bitstream's capacity is unsatisfiable; reject it before the reserve so
// a forged count can't drive a huge allocation.
void check_count(BytesView bits, size_t count) {
  SZSEC_CHECK_FORMAT(count <= static_cast<uint64_t>(bits.size()) * 8,
                     "symbol count exceeds bitstream capacity");
}

// One entry of the flat probe table: the symbols spelled out by the top
// kDecodeTableBits of the bitstream, as many as fit (up to
// kMaxSymbolsPerProbe).  nsym == 0 marks a first codeword longer than
// the window — the caller falls back to the exact bit walk.
struct ProbeEntry {
  uint8_t nsym;
  uint8_t nbits;  // total bits consumed by the nsym symbols
  uint32_t sym[kMaxSymbolsPerProbe];
};

std::vector<ProbeEntry> build_probe_table(const Canonical& c) {
  std::vector<ProbeEntry> dt(size_t{1} << kDecodeTableBits);
  for (uint32_t idx = 0; idx < dt.size(); ++idx) {
    ProbeEntry e{};
    unsigned used = 0;
    while (e.nsym < kMaxSymbolsPerProbe) {
      // Walk the canonical code over window bits [used, kDecodeTableBits).
      uint32_t code = 0;
      unsigned len = 0;
      bool matched = false;
      while (used + len < kDecodeTableBits) {
        const unsigned bit = (idx >> (kDecodeTableBits - 1 - (used + len))) & 1u;
        code = (code << 1) | bit;
        ++len;
        if (c.lcount[len] != 0 && code - c.first_code[len] < c.lcount[len]) {
          e.sym[e.nsym++] = c.sorted[c.first_index[len] + (code - c.first_code[len])];
          used += len;
          matched = true;
          break;
        }
      }
      if (!matched) break;  // next codeword spills past the window
    }
    e.nbits = static_cast<uint8_t>(used);
    dt[idx] = e;
  }
  return dt;
}

}  // namespace

std::vector<uint32_t> decode_tree_walk(const CodeTable& table, BytesView bits,
                                       size_t count) {
  // Canonical decoding: track the running code value and compare against
  // the first-code boundary for each length.
  const Canonical c = build_canonical(table);
  check_count(bits, count);
  BitReader r(bits);
  std::vector<uint32_t> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint32_t code = 0;
    unsigned len = 0;
    while (true) {
      SZSEC_CHECK_FORMAT(len < kMaxCodeLength, "dead branch in Huffman code");
      code = (code << 1) | r.get_bit();
      ++len;
      if (c.lcount[len] != 0 && code - c.first_code[len] < c.lcount[len]) {
        out.push_back(c.sorted[c.first_index[len] + (code - c.first_code[len])]);
        break;
      }
      // No codeword of this length matches; keep extending.  Invalid
      // streams fall off the length limit and throw above.
    }
  }
  return out;
}

std::vector<uint32_t> decode(const CodeTable& table, BytesView bits,
                             size_t count) {
  // Short streams don't amortize the 2^kDecodeTableBits probe-table
  // build; take the exact walk directly.
  if (count < kProbeDecodeMinSymbols) {
    return decode_tree_walk(table, bits, count);
  }

  const Canonical c = build_canonical(table);
  check_count(bits, count);
  const std::vector<ProbeEntry> dt = build_probe_table(c);

  // 64-bit MSB-aligned accumulator over the byte buffer: `acc` holds at
  // least the next `have` stream bits in its top bits.  The wide refill
  // may OR in more real stream bits than `have` accounts for; that is
  // harmless — the next refill ORs the same values over themselves.
  const uint8_t* data = bits.data();
  const size_t nbytes = bits.size();
  uint64_t acc = 0;
  unsigned have = 0;
  size_t next_byte = 0;
  const auto refill = [&] {
    if (next_byte + 8 <= nbytes) {
      uint64_t chunk;
      std::memcpy(&chunk, data + next_byte, 8);
      if constexpr (std::endian::native == std::endian::little) {
        chunk = __builtin_bswap64(chunk);
      }
      acc |= chunk >> have;
      const unsigned consumed = (63u - have) >> 3;
      next_byte += consumed;
      have += consumed * 8;
    } else {
      while (have <= 56 && next_byte < nbytes) {
        acc |= static_cast<uint64_t>(data[next_byte++]) << (56 - have);
        have += 8;
      }
    }
  };
  // Exact bit walk over the accumulator — same comparisons and same
  // error behavior as decode_tree_walk, used for over-long codewords
  // and the stream tail.
  const auto decode_one = [&]() -> uint32_t {
    uint32_t code = 0;
    unsigned len = 0;
    while (true) {
      SZSEC_CHECK_FORMAT(len < kMaxCodeLength, "dead branch in Huffman code");
      if (have == 0) {
        refill();
        SZSEC_CHECK_FORMAT(have > 0, "bitstream exhausted");
      }
      code = (code << 1) | static_cast<uint32_t>(acc >> 63);
      acc <<= 1;
      --have;
      ++len;
      if (c.lcount[len] != 0 && code - c.first_code[len] < c.lcount[len]) {
        return c.sorted[c.first_index[len] + (code - c.first_code[len])];
      }
    }
  };

  // Preallocated output with raw-pointer stores: the probe loop writes all
  // kMaxSymbolsPerProbe slots unconditionally (the `i + kMaxSymbolsPerProbe
  // <= count` guard reserves room) and advances by the real count, which
  // keeps the hot loop free of per-symbol bounds checks.
  std::vector<uint32_t> out(count);
  uint32_t* op = out.data();
  size_t i = 0;
  while (i + kMaxSymbolsPerProbe <= count) {
    refill();
    if (have < kDecodeTableBits) break;  // tail: finish with the exact walk
    const ProbeEntry& e = dt[acc >> (64 - kDecodeTableBits)];
    if (e.nsym == 0) {
      // First codeword longer than the window: exact walk for one symbol.
      *op++ = decode_one();
      ++i;
      continue;
    }
    static_assert(kMaxSymbolsPerProbe == 3, "unrolled stores below");
    op[0] = e.sym[0];
    op[1] = e.sym[1];
    op[2] = e.sym[2];
    op += e.nsym;
    acc <<= e.nbits;
    have -= e.nbits;
    i += e.nsym;
  }
  for (; i < count; ++i) *op++ = decode_one();
  return out;
}

}  // namespace szsec::huffman
