#include "huffman/huffman.h"

#include <algorithm>
#include <queue>

#include "common/error.h"

namespace szsec::huffman {

size_t CodeTable::used_symbols() const {
  size_t n = 0;
  for (uint8_t l : lengths) n += (l != 0);
  return n;
}

namespace {

// Computes unrestricted Huffman code lengths for the nonzero frequencies
// via the classic two-queue/heap merge.  Returns max length encountered.
unsigned huffman_lengths(std::span<const uint64_t> freq,
                         std::vector<uint8_t>& lengths) {
  struct Node {
    uint64_t weight;
    uint32_t id;  // tie-break for determinism
    int32_t left = -1, right = -1;
    uint32_t symbol = 0;  // valid for leaves
    bool leaf = false;
  };
  std::vector<Node> nodes;
  nodes.reserve(freq.size() * 2);
  for (size_t s = 0; s < freq.size(); ++s) {
    if (freq[s] > 0) {
      nodes.push_back({freq[s], static_cast<uint32_t>(nodes.size()), -1, -1,
                       static_cast<uint32_t>(s), true});
    }
  }
  lengths.assign(freq.size(), 0);
  if (nodes.empty()) return 0;
  if (nodes.size() == 1) {
    // A degenerate alphabet still needs one bit per symbol so the decoder
    // can count symbols.
    lengths[nodes[0].symbol] = 1;
    return 1;
  }

  auto cmp = [&nodes](int32_t a, int32_t b) {
    if (nodes[a].weight != nodes[b].weight) {
      return nodes[a].weight > nodes[b].weight;
    }
    return nodes[a].id > nodes[b].id;
  };
  std::priority_queue<int32_t, std::vector<int32_t>, decltype(cmp)> heap(cmp);
  for (size_t i = 0; i < nodes.size(); ++i) {
    heap.push(static_cast<int32_t>(i));
  }
  while (heap.size() > 1) {
    const int32_t a = heap.top();
    heap.pop();
    const int32_t b = heap.top();
    heap.pop();
    Node parent;
    parent.weight = nodes[a].weight + nodes[b].weight;
    parent.id = static_cast<uint32_t>(nodes.size());
    parent.left = a;
    parent.right = b;
    nodes.push_back(parent);
    heap.push(static_cast<int32_t>(nodes.size() - 1));
  }
  const int32_t root = heap.top();

  // Iterative depth assignment.
  unsigned max_len = 0;
  std::vector<std::pair<int32_t, unsigned>> stack{{root, 0}};
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& n = nodes[idx];
    if (n.leaf) {
      SZSEC_REQUIRE(depth <= 255, "code length overflow");
      lengths[n.symbol] = static_cast<uint8_t>(depth);
      max_len = std::max(max_len, depth);
    } else {
      stack.push_back({n.left, depth + 1});
      stack.push_back({n.right, depth + 1});
    }
  }
  return max_len;
}

}  // namespace

CodeTable build_code_table(std::span<const uint64_t> frequencies) {
  std::vector<uint8_t> lengths;
  std::vector<uint64_t> scaled(frequencies.begin(), frequencies.end());
  // Rescale until the tree respects kMaxCodeLength.  Halving (with a floor
  // of 1 to keep symbols alive) provably terminates: eventually all
  // nonzero frequencies are 1 and the tree is balanced.
  while (huffman_lengths(scaled, lengths) > kMaxCodeLength) {
    for (auto& f : scaled) {
      if (f > 0) f = (f + 1) / 2;
    }
  }
  return CodeTable::from_lengths(std::move(lengths));
}

CodeTable CodeTable::from_lengths(std::vector<uint8_t> lengths) {
  CodeTable t;
  t.lengths = std::move(lengths);
  t.codes.assign(t.lengths.size(), 0);

  // Kraft check + canonical assignment in (length, symbol) order.
  std::vector<uint32_t> count(kMaxCodeLength + 1, 0);
  for (uint8_t l : t.lengths) {
    SZSEC_CHECK_FORMAT(l <= kMaxCodeLength, "code length exceeds limit");
    if (l > 0) ++count[l];
  }
  uint64_t kraft = 0;
  for (unsigned l = 1; l <= kMaxCodeLength; ++l) {
    kraft += static_cast<uint64_t>(count[l]) << (kMaxCodeLength - l);
  }
  const uint64_t kraft_limit = uint64_t{1} << kMaxCodeLength;
  SZSEC_CHECK_FORMAT(kraft <= kraft_limit, "Kraft inequality violated");

  std::vector<uint32_t> next_code(kMaxCodeLength + 2, 0);
  uint32_t code = 0;
  for (unsigned l = 1; l <= kMaxCodeLength; ++l) {
    code = (code + count[l - 1]) << 1;
    next_code[l] = code;
  }
  for (size_t s = 0; s < t.lengths.size(); ++s) {
    const uint8_t l = t.lengths[s];
    if (l > 0) t.codes[s] = next_code[l]++;
  }
  return t;
}

Bytes serialize_table(const CodeTable& table) {
  // Run-length encode the length array: scientific quantization arrays have
  // long zero runs (most bins unused), so RLE keeps the tree blob small.
  ByteWriter w;
  w.put_varint(table.lengths.size());
  size_t i = 0;
  while (i < table.lengths.size()) {
    const uint8_t l = table.lengths[i];
    size_t run = 1;
    while (i + run < table.lengths.size() && table.lengths[i + run] == l) {
      ++run;
    }
    w.put_u8(l);
    w.put_varint(run);
    i += run;
  }
  return w.take();
}

CodeTable deserialize_table(BytesView blob) {
  ByteReader r(blob);
  const uint64_t alphabet = r.get_varint();
  SZSEC_CHECK_FORMAT(alphabet <= (uint64_t{1} << 28),
                     "implausible alphabet size");
  std::vector<uint8_t> lengths;
  lengths.reserve(static_cast<size_t>(alphabet));
  while (lengths.size() < alphabet) {
    const uint8_t l = r.get_u8();
    const uint64_t run = r.get_varint();
    SZSEC_CHECK_FORMAT(run > 0 && lengths.size() + run <= alphabet,
                       "bad run length in code table");
    lengths.insert(lengths.end(), static_cast<size_t>(run), l);
  }
  SZSEC_CHECK_FORMAT(r.done(), "trailing bytes after code table");
  return CodeTable::from_lengths(std::move(lengths));
}

Bytes encode(const CodeTable& table, std::span<const uint32_t> symbols) {
  BitWriter w;
  for (uint32_t s : symbols) {
    SZSEC_REQUIRE(s < table.lengths.size() && table.lengths[s] > 0,
                  "symbol has no code");
    w.put_bits(table.codes[s], table.lengths[s]);
  }
  return w.finish();
}

size_t encoded_bits(const CodeTable& table,
                    std::span<const uint32_t> symbols) {
  size_t bits = 0;
  for (uint32_t s : symbols) {
    SZSEC_REQUIRE(s < table.lengths.size() && table.lengths[s] > 0,
                  "symbol has no code");
    bits += table.lengths[s];
  }
  return bits;
}

std::vector<uint32_t> decode(const CodeTable& table, BytesView bits,
                             size_t count) {
  // Canonical decoding: track the running code value and compare against
  // the first-code boundary for each length.
  std::vector<uint32_t> first_code(kMaxCodeLength + 2, 0);
  std::vector<uint32_t> first_index(kMaxCodeLength + 2, 0);
  std::vector<uint32_t> lcount(kMaxCodeLength + 1, 0);
  for (uint8_t l : table.lengths) {
    if (l > 0) ++lcount[l];
  }
  // Symbols sorted by (length, symbol) — the canonical order.
  std::vector<uint32_t> sorted;
  sorted.reserve(table.used_symbols());
  for (unsigned l = 1; l <= kMaxCodeLength; ++l) {
    for (size_t s = 0; s < table.lengths.size(); ++s) {
      if (table.lengths[s] == l) sorted.push_back(static_cast<uint32_t>(s));
    }
  }
  {
    uint32_t code = 0, index = 0;
    for (unsigned l = 1; l <= kMaxCodeLength; ++l) {
      code = (code + lcount[l - 1]) << 1;
      first_code[l] = code;
      first_index[l] = index;
      index += lcount[l];
    }
  }

  BitReader r(bits);
  // Every symbol consumes at least one bit, so a count beyond the
  // bitstream's capacity is unsatisfiable; reject it before the
  // reserve so a forged count can't drive a huge allocation.
  SZSEC_CHECK_FORMAT(count <= static_cast<uint64_t>(bits.size()) * 8,
                     "symbol count exceeds bitstream capacity");
  std::vector<uint32_t> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint32_t code = 0;
    unsigned len = 0;
    while (true) {
      SZSEC_CHECK_FORMAT(len < kMaxCodeLength, "dead branch in Huffman code");
      code = (code << 1) | r.get_bit();
      ++len;
      if (lcount[len] != 0 && code - first_code[len] < lcount[len]) {
        out.push_back(sorted[first_index[len] + (code - first_code[len])]);
        break;
      }
      // No codeword of this length matches; keep extending.  Invalid
      // streams fall off the length limit and throw above.
    }
  }
  return out;
}

}  // namespace szsec::huffman
