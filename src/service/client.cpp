#include "service/client.h"

#include <cerrno>

namespace szsec::service {

ServiceClient::ServiceClient(const std::string& socket_path)
    : fd_(connect_unix(socket_path)), src_(fd_.get()), sink_(fd_.get()) {}

JobResponse ServiceClient::submit(const JobRequest& req) {
  write_frame(sink_, BytesView(encode_request(req)));
  std::optional<Bytes> body = read_frame(src_, kResponseMagic);
  if (!body) {
    throw IoError("daemon closed the connection without responding",
                  ECONNRESET);
  }
  return parse_response(BytesView(*body));
}

JobResponse ServiceClient::ping(BytesView payload) {
  JobRequest req;
  req.op = JobOp::kPing;
  req.payload.assign(payload.begin(), payload.end());
  return submit(req);
}

}  // namespace szsec::service
