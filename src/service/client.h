// Client side of the archive service protocol (`szsec_cli client`).
//
// One ServiceClient owns one connected Unix-domain socket and submits
// jobs synchronously: write a request frame, block for the response
// frame.  The connection is reusable for any number of sequential jobs;
// concurrency comes from opening more clients (the daemon serves each
// connection on its own handler and fans job bodies across its shared
// pool).  Not thread-safe: one submitting thread per client.
#pragma once

#include <string>

#include "common/io.h"
#include "service/protocol.h"

namespace szsec::service {

class ServiceClient {
 public:
  /// Connects to the daemon at `socket_path`.  Throws IoError carrying
  /// the OS errno — ENOENT when no daemon ever bound the path,
  /// ECONNREFUSED when one did but is gone (the CLI's exit-2 contract
  /// surfaces that text).
  explicit ServiceClient(const std::string& socket_path);

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Submits one job and blocks for its response.  Throws IoError when
  /// the daemon hangs up without responding, CorruptError on a
  /// malformed response frame.  Typed job failures are NOT exceptions —
  /// inspect JobResponse::status.
  JobResponse submit(const JobRequest& req);

  /// Liveness probe: round-trips `payload` through JobOp::kPing.
  JobResponse ping(BytesView payload = {});

 private:
  OwnedFd fd_;
  FdSource src_;
  FdSink sink_;
};

}  // namespace szsec::service
