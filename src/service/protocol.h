// Wire protocol of the szsec archive service (szsec_cli serve/client).
//
// One TCP-style Unix-domain stream carries a sequence of independent
// job exchanges: the client writes a request frame, the daemon writes
// exactly one response frame, and the connection is then free for the
// next request.  Frames are length-prefixed so either side can read a
// whole message with two exact-length reads and never has to parse a
// partial buffer:
//
//   frame:  u32 magic ("SZJQ" request / "SZJS" response)
//           u64 body_len      -- bytes that follow, little-endian
//           body_len x u8     -- serialized JobRequest / JobResponse
//
// Body layouts (every multi-byte integer little-endian, varint =
// LEB128 as in common/bytestream.h; see docs/FORMATS.md for the
// normative spec):
//
//   request body:
//     u8  protocol version (= kProtocolVersion)
//     u8  op                       (JobOp)
//     varint tenant_len | tenant   (UTF-8 tenant id; empty = untenanted,
//                                   only valid for unencrypted jobs)
//     varint key_id                (0 = the tenant's active key)
//     u8  scheme | u8 cipher mode | u8 flags (bit0 = authenticate)
//     u8  dtype (0 = f32, 1 = f64) | u8 rank
//     rank x varint dims           (compress only; rank 0 otherwise)
//     u64 error-bound bits         (IEEE-754 f64 bit pattern)
//     varint chunks                (compress: v3 chunk count, 0 = daemon
//                                   default)
//     varint payload_len | payload (compress: raw little-endian element
//                                   bytes; decompress/verify/salvage:
//                                   archive bytes; ping: echoed opaquely)
//
//   response body:
//     u8  protocol version
//     u8  status                   (Status)
//     varint detail_len | detail   (human-readable; error text, or
//                                   summary metadata on success)
//     varint key_id                (key id actually used; 0 = none)
//     varint raw_bytes             (element bytes in/out; op-dependent)
//     varint archive_bytes         (archive bytes out/in; op-dependent)
//     varint payload_len | payload (compress: archive; decompress/
//                                   salvage: element bytes; verify:
//                                   empty; ping: the echoed request
//                                   payload)
//
// Every field of an incoming frame is untrusted: lengths are capped
// (kMaxFrameBytes and the daemon's admission budget), enum values are
// range-checked, and a malformed body is CorruptError — never an
// out-of-bounds read.  A frame whose magic does not match is rejected
// before any length is believed.
#pragma once

#include <optional>
#include <string>

#include "common/bufpool.h"
#include "common/bytestream.h"
#include "common/dims.h"
#include "common/io.h"
#include "core/scheme.h"
#include "crypto/cipher.h"
#include "sz/params.h"

namespace szsec::service {

inline constexpr uint32_t kRequestMagic = 0x514A5A53;   // "SZJQ"
inline constexpr uint32_t kResponseMagic = 0x534A5A53;  // "SZJS"
inline constexpr uint8_t kProtocolVersion = 1;

/// Hard ceiling on any frame body this implementation will read;
/// daemons enforce their (smaller) admission budget on top.
inline constexpr uint64_t kMaxFrameBytes = 1ull << 30;

/// Longest tenant id accepted on the wire.
inline constexpr size_t kMaxTenantBytes = 256;

/// Job kinds the daemon executes.
enum class JobOp : uint8_t {
  kPing = 0,        ///< liveness probe; payload echoed back
  kCompress = 1,    ///< raw elements -> v3 chunked archive
  kDecompress = 2,  ///< archive (v2 or v3) -> raw elements
  kVerify = 3,      ///< read-only integrity scan (archive/verify.h)
  kSalvage = 4,     ///< best-effort decode of a damaged archive
};

const char* to_string(JobOp op);

/// Response status.  kOk means the job ran to completion; every other
/// value is typed so clients can branch without parsing detail text.
enum class Status : uint8_t {
  kOk = 0,
  kDataError = 1,      ///< corrupt archive / damaged chunks (szsec::Error)
  kCryptoError = 2,    ///< decryption or MAC failure — wrong key or
                       ///< wrong tenant, never silently wrong data
  kBadRequest = 3,     ///< malformed or inconsistent request fields
  kOverloaded = 4,     ///< admission control rejected the job; the byte
                       ///< budget is full — back off and retry
  kDraining = 5,       ///< daemon is shutting down; no new jobs
  kUnknownTenant = 6,  ///< tenant or key id absent from the keyring
  kInternalError = 7,  ///< unexpected daemon-side failure
};

const char* to_string(Status s);

/// One job submission (see the file comment for the wire layout).
struct JobRequest {
  JobOp op = JobOp::kPing;
  std::string tenant;
  uint64_t key_id = 0;  ///< 0 = tenant's active key
  core::Scheme scheme = core::Scheme::kEncrHuffman;
  crypto::Mode mode = crypto::Mode::kCbc;
  bool authenticate = false;
  sz::DType dtype = sz::DType::kFloat32;
  Dims dims;            ///< compress only (rank >= 1)
  bool have_dims = false;
  double error_bound = 1e-4;
  uint64_t chunks = 0;  ///< compress: v3 chunk count (0 = daemon default)
  Bytes payload;
};

/// One job outcome.
struct JobResponse {
  Status status = Status::kInternalError;
  std::string detail;
  uint64_t key_id = 0;
  uint64_t raw_bytes = 0;
  uint64_t archive_bytes = 0;
  Bytes payload;

  bool ok() const { return status == Status::kOk; }
};

/// Serializes `req` into a complete frame (magic + length + body).
Bytes encode_request(const JobRequest& req);

/// Serializes `resp` into a complete frame.
Bytes encode_response(const JobResponse& resp);

/// Parses a request body (the bytes after magic + length).  Throws
/// CorruptError on any malformed field.
JobRequest parse_request(BytesView body);

/// Parses a response body.  Throws CorruptError on malformed input.
JobResponse parse_response(BytesView body);

/// Reads one complete frame body from `in`: checks the magic, caps the
/// length at min(kMaxFrameBytes, `max_body_bytes` when non-zero), and
/// loops until body_len bytes arrived.  Returns nullopt on a clean end
/// of stream BEFORE the first magic byte (the peer hung up between
/// exchanges — not an error); throws CorruptError on a bad magic, an
/// oversized length, or a stream that ends mid-frame.  The body buffer
/// is acquired from `pool` when one is supplied (the daemon recycles
/// request buffers through its shared BufferPool).
std::optional<Bytes> read_frame(ByteSource& in, uint32_t expected_magic,
                                uint64_t max_body_bytes = 0,
                                BufferPool* pool = nullptr);

/// Writes a complete frame (already produced by encode_*) to `out` and
/// flushes.
void write_frame(ByteSink& out, BytesView frame);

}  // namespace szsec::service
