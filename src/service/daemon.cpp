#include "service/daemon.h"

#include <sys/socket.h>

#include <cmath>
#include <future>
#include <utility>

#include "archive/chunked.h"
#include "archive/verify.h"
#include "common/error.h"
#include "crypto/cipher.h"

namespace szsec::service {

// ---------------------------------------------------------------------
// FairTenantQueue

void FairTenantQueue::push(const std::string& tenant,
                           std::function<void()> job) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = queues_.try_emplace(tenant);
  if (it->second.empty()) order_.push_back(tenant);
  it->second.push_back(std::move(job));
}

std::function<void()> FairTenantQueue::pop() {
  std::lock_guard<std::mutex> lock(mu_);
  SZSEC_REQUIRE(!order_.empty(), "fair queue pop without a queued job");
  const std::string tenant = std::move(order_.front());
  order_.pop_front();
  auto it = queues_.find(tenant);
  SZSEC_REQUIRE(it != queues_.end() && !it->second.empty(),
                "fair queue rotation out of sync");
  std::function<void()> job = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) {
    queues_.erase(it);  // tenant leaves the rotation until its next job
  } else {
    order_.push_back(tenant);  // rotate: one job per turn
  }
  return job;
}

size_t FairTenantQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [tenant, jobs] : queues_) n += jobs.size();
  return n;
}

// ---------------------------------------------------------------------
// ServiceDaemon lifecycle

ServiceDaemon::ServiceDaemon(ServiceConfig config, TenantKeyring keyring)
    : config_(std::move(config)), keyring_(std::move(keyring)) {
  if (config_.max_frame_bytes == 0 ||
      config_.max_frame_bytes > kMaxFrameBytes) {
    config_.max_frame_bytes = kMaxFrameBytes;
  }
  if (config_.default_chunks == 0) config_.default_chunks = 4;
}

ServiceDaemon::~ServiceDaemon() { stop(); }

void ServiceDaemon::start() {
  SZSEC_REQUIRE(!started_.load(), "daemon already started");
  listener_ = std::make_unique<UnixListener>(config_.socket_path);
  pool_ = std::make_unique<parallel::ThreadPool>(config_.threads);
  started_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ServiceDaemon::request_drain() noexcept {
  draining_.store(true, std::memory_order_release);
  // Wake the accept loop; it performs the non-signal-safe connection
  // drain on its own thread.
  if (listener_) listener_->interrupt();
}

void ServiceDaemon::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop has exited and drained the connections; join the
  // handler threads (each finishes once its in-flight job responded).
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(connections_);
  }
  for (auto& c : conns) {
    if (c->thread.joinable()) c->thread.join();
  }
  // Destroying the pool drains any queued-but-unstarted tickets.
  pool_.reset();
  listener_.reset();
}

void ServiceDaemon::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  request_drain();
  wait();
  started_.store(false, std::memory_order_release);
}

ServiceStats ServiceDaemon::stats() const {
  ServiceStats s;
  s.connections_accepted = connections_accepted_.load();
  s.jobs_completed = jobs_completed_.load();
  s.jobs_rejected = jobs_rejected_.load();
  s.peak_in_flight_bytes = peak_in_flight_bytes_.load();
  return s;
}

// ---------------------------------------------------------------------
// Accept / connection plumbing

void ServiceDaemon::accept_loop() {
  for (;;) {
    OwnedFd fd = listener_->accept();
    if (!fd.valid()) break;  // interrupt() — drain begins
    if (draining_.load(std::memory_order_acquire)) break;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Connection>();
    Connection* raw = conn.get();
    raw->fd.store(fd.get(), std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      reap_finished_locked();
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread(
        [this, raw, f = std::move(fd)]() mutable {
          handle_connection(raw, std::move(f));
        });
  }
  drain_connections();
}

void ServiceDaemon::drain_connections() noexcept {
  // Half-close every live connection for reading: a handler blocked in
  // read_frame() sees EOF and exits; a handler mid-job keeps its write
  // side and still delivers the response.
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto& c : connections_) {
    const int fd = c->fd.load(std::memory_order_acquire);
    if (fd >= 0) ::shutdown(fd, SHUT_RD);  // EBADF/ENOTSOCK harmless
  }
}

void ServiceDaemon::reap_finished_locked() {
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void ServiceDaemon::handle_connection(Connection* conn, OwnedFd fd) {
  FdSource src(fd.get());
  FdSink sink(fd.get());
  for (;;) {
    JobResponse resp;
    uint64_t cost = 0;
    bool admitted = false;
    try {
      std::optional<Bytes> body = read_frame(
          src, kRequestMagic, config_.max_frame_bytes, &buffer_pool_);
      if (!body) break;  // peer hung up (or drain half-closed us)
      try {
        JobRequest req = parse_request(BytesView(*body));
        buffer_pool_.release(std::move(*body));
        if (draining_.load(std::memory_order_acquire)) {
          resp.status = Status::kDraining;
          resp.detail = "daemon is draining; resubmit elsewhere";
        } else {
          cost = req.payload.size();
          if (!try_admit(cost)) {
            resp.status = Status::kOverloaded;
            resp.detail = "in-flight byte budget exhausted; retry later";
          } else {
            admitted = true;
            // File the job under its tenant and hand the shared pool
            // one ticket; the ticket pops whichever tenant's turn it
            // is, so heavy tenants cannot starve light ones.
            std::promise<JobResponse> done;
            std::future<JobResponse> result = done.get_future();
            queue_.push(req.tenant,
                        [this, r = std::move(req), &done]() mutable {
                          done.set_value(run_job(std::move(r)));
                        });
            std::future<void> ticket =
                pool_->submit([this] { queue_.pop()(); });
            resp = result.get();
            ticket.get();  // propagate a daemon-bug exception, if any
          }
        }
      } catch (const CorruptError& e) {
        // Malformed body inside a well-delimited frame: the stream is
        // still synchronized, so answer and keep the connection.
        resp.status = Status::kBadRequest;
        resp.detail = e.what();
      }
    } catch (const Error&) {
      // Bad magic / oversized length / mid-frame EOF: the byte stream
      // is unsynchronized — nothing further can be trusted.  Close.
      break;
    }
    if (admitted) release_admission(cost);
    jobs_completed_.fetch_add(1, std::memory_order_relaxed);
    try {
      write_frame(sink, BytesView(encode_response(resp)));
    } catch (const IoError&) {
      break;  // peer gone mid-response
    }
  }
  // Publish fd teardown before closing so drain_connections() never
  // shuts down a recycled descriptor number.
  conn->fd.store(-1, std::memory_order_release);
  fd.reset();
  conn->done.store(true, std::memory_order_release);
}

// ---------------------------------------------------------------------
// Admission control

bool ServiceDaemon::try_admit(uint64_t cost) {
  std::lock_guard<std::mutex> lock(admit_mu_);
  if (in_flight_bytes_ + cost > config_.admission_budget_bytes) {
    jobs_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  in_flight_bytes_ += cost;
  uint64_t peak = peak_in_flight_bytes_.load(std::memory_order_relaxed);
  while (in_flight_bytes_ > peak &&
         !peak_in_flight_bytes_.compare_exchange_weak(
             peak, in_flight_bytes_, std::memory_order_relaxed)) {
  }
  return true;
}

void ServiceDaemon::release_admission(uint64_t cost) {
  std::lock_guard<std::mutex> lock(admit_mu_);
  in_flight_bytes_ -= cost;
}

// ---------------------------------------------------------------------
// Job execution

JobResponse ServiceDaemon::run_job(JobRequest req) {
  JobResponse resp;
  try {
    if (req.op == JobOp::kPing) {
      resp.status = Status::kOk;
      resp.detail = "pong";
      resp.payload = std::move(req.payload);
      return resp;
    }

    // Resolve the data key.  An empty tenant is only valid for jobs
    // that need no key at all (plain-SZ, unauthenticated).
    Bytes key;
    if (!req.tenant.empty()) {
      const size_t key_bytes =
          crypto::cipher_key_size(crypto::CipherKind::kAes128);
      std::optional<DataKey> dk =
          keyring_.derive_data_key(req.tenant, req.key_id, key_bytes);
      if (!dk) {
        resp.status = Status::kUnknownTenant;
        resp.detail = "unknown tenant or key id: " + req.tenant + "#" +
                      std::to_string(req.key_id);
        return resp;
      }
      resp.key_id = dk->key_id;
      key = std::move(dk->key);
    } else if (req.op == JobOp::kCompress &&
               (req.scheme != core::Scheme::kNone || req.authenticate)) {
      resp.status = Status::kBadRequest;
      resp.detail = "encrypted or authenticated job requires a tenant";
      return resp;
    }

    // Every job runs its codec single-threaded: the shared pool already
    // provides the parallelism, one worker per job.
    archive::ChunkedConfig cfg;
    cfg.threads = 1;
    cfg.spool = FrameSpool::Backing::kMemory;

    switch (req.op) {
      case JobOp::kCompress: {
        if (!req.have_dims) {
          resp.status = Status::kBadRequest;
          resp.detail = "compress requires dims";
          return resp;
        }
        if (!(req.error_bound > 0.0) ||
            !std::isfinite(req.error_bound)) {
          resp.status = Status::kBadRequest;
          resp.detail = "error bound must be finite and positive";
          return resp;
        }
        const size_t want =
            req.dims.count() * sz::dtype_size(req.dtype);
        if (req.payload.size() != want) {
          resp.status = Status::kBadRequest;
          resp.detail = "payload is " + std::to_string(req.payload.size()) +
                        " bytes; dims " + req.dims.to_string() + " need " +
                        std::to_string(want);
          return resp;
        }
        sz::Params params;
        params.abs_error_bound = req.error_bound;
        core::CipherSpec spec;
        spec.mode = req.mode;
        spec.authenticate = req.authenticate;
        cfg.chunks = static_cast<size_t>(
            req.chunks != 0 ? req.chunks : config_.default_chunks);
        MemorySource in(BytesView(req.payload));
        MemorySink out;
        archive::compress_chunked_stream(in, out, req.dtype, req.dims,
                                         params, req.scheme,
                                         BytesView(key), spec, cfg);
        resp.raw_bytes = req.payload.size();
        resp.payload = out.take();
        resp.archive_bytes = resp.payload.size();
        resp.status = Status::kOk;
        resp.detail = "compressed " + req.dims.to_string();
        return resp;
      }
      case JobOp::kDecompress: {
        MemorySource in(BytesView(req.payload));
        MemorySink out;
        const archive::ChunkedStreamDecodeResult r =
            archive::decompress_chunked_stream(in, out, BytesView(key),
                                               cfg);
        resp.archive_bytes = req.payload.size();
        resp.payload = out.take();
        resp.raw_bytes = resp.payload.size();
        resp.status = Status::kOk;
        resp.detail = "decompressed " + r.dims.to_string();
        return resp;
      }
      case JobOp::kVerify: {
        const archive::VerifyReport report =
            archive::verify_archive(BytesView(req.payload), BytesView(key));
        resp.archive_bytes = req.payload.size();
        if (report.clean()) {
          resp.status = Status::kOk;
          resp.detail = "clean: " + std::to_string(report.chunks_ok) + "/" +
                        std::to_string(report.chunks.size()) + " chunks ok";
        } else {
          resp.status = Status::kDataError;
          resp.detail = !report.prelude_ok
                            ? "prelude: " + report.prelude_detail
                            : std::to_string(report.chunks_ok) + "/" +
                                  std::to_string(report.chunks.size()) +
                                  " chunks ok";
        }
        return resp;
      }
      case JobOp::kSalvage: {
        archive::SalvageOptions opts;
        opts.fill = archive::FallbackFill::kZeros;
        MemorySource in(BytesView(req.payload));
        MemorySink out;
        const archive::ChunkedStreamSalvageResult r =
            archive::salvage_chunked_stream(in, out, BytesView(key), opts);
        resp.archive_bytes = req.payload.size();
        resp.payload = out.take();
        resp.raw_bytes = resp.payload.size();
        resp.status = Status::kOk;
        resp.detail =
            "recovered " + std::to_string(r.report.chunks_recovered) + "/" +
            std::to_string(r.report.chunks_expected) + " chunks";
        return resp;
      }
      case JobOp::kPing:
        break;  // handled above
    }
    resp.status = Status::kBadRequest;
    resp.detail = "unhandled op";
    return resp;
  } catch (const CryptoError& e) {
    resp.status = Status::kCryptoError;
    resp.detail = e.what();
  } catch (const CorruptError& e) {
    resp.status = Status::kDataError;
    resp.detail = e.what();
  } catch (const IoError& e) {
    resp.status = Status::kInternalError;
    resp.detail = e.what();
  } catch (const Error& e) {
    // SZSEC_REQUIRE failures — the request asked for something the
    // library rejects as a parameter error.
    resp.status = Status::kBadRequest;
    resp.detail = e.what();
  } catch (const std::exception& e) {
    resp.status = Status::kInternalError;
    resp.detail = e.what();
  }
  resp.payload.clear();
  return resp;
}

}  // namespace szsec::service
