// Per-tenant key management for the archive service.
//
// Each tenant registers one or more *master* keys, identified by a
// monotonically increasing key id; the newest is the tenant's *active*
// key.  Jobs never touch a master key directly: the daemon derives a
// per-use *data* key with crypto::hkdf_sha256, binding the tenant name
// and key id into the HKDF info string so no two (tenant, id) pairs can
// ever derive the same data key — even from an identical master.  The
// derivation is deterministic, so decompressing an archive only needs
// the (tenant, key id) recorded in its job metadata, and rotating a
// tenant means adding a new master (re-wrapping), not re-encrypting
// existing archives: old ids keep deriving the old data keys.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/bytestream.h"

namespace szsec::service {

/// A derived per-job encryption key plus the master key id it came from
/// (recorded in job metadata so the archive can be decrypted later).
struct DataKey {
  uint64_t key_id = 0;
  Bytes key;
};

/// Thread-safe registry of tenant master keys.  All methods may be
/// called concurrently; rotation during live traffic is safe (jobs that
/// resolved key id 0 before the rotation finish under the old key, and
/// their response reports which id was used).
class TenantKeyring {
 public:
  TenantKeyring() = default;

  /// Movable so a fully-populated keyring can be handed to the daemon;
  /// the source must not be in concurrent use during the move.
  TenantKeyring(TenantKeyring&& other) noexcept {
    std::lock_guard<std::mutex> lock(other.mu_);
    tenants_ = std::move(other.tenants_);
  }
  TenantKeyring& operator=(TenantKeyring&&) = delete;
  TenantKeyring(const TenantKeyring&) = delete;
  TenantKeyring& operator=(const TenantKeyring&) = delete;

  /// Registers a master key for `tenant`.  `key_id` 0 assigns the next
  /// id (1 for a new tenant); the new key becomes the active one when
  /// its id is the highest registered.  Throws Error on an empty tenant
  /// name, an empty key, or a duplicate explicit id.
  uint64_t add_key(const std::string& tenant, BytesView master_key,
                   uint64_t key_id = 0);

  /// Adds `new_master` under the next key id and makes it active.
  /// Returns the new id.  Equivalent to add_key(tenant, new_master).
  uint64_t rotate(const std::string& tenant, BytesView new_master);

  bool has_tenant(const std::string& tenant) const;

  /// The tenant's active (highest) key id, or 0 when unknown.
  uint64_t active_key_id(const std::string& tenant) const;

  size_t tenant_count() const;

  /// Derives a `key_bytes`-byte data key for (tenant, key_id); id 0
  /// selects the tenant's active key.  Returns nullopt when the tenant
  /// or the id is not registered — the daemon maps that to
  /// Status::kUnknownTenant, never to a crypto failure.
  std::optional<DataKey> derive_data_key(const std::string& tenant,
                                         uint64_t key_id,
                                         size_t key_bytes) const;

 private:
  struct TenantKeys {
    std::map<uint64_t, Bytes> masters;  ///< id -> master key
    uint64_t active = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, TenantKeys> tenants_;
};

}  // namespace szsec::service
