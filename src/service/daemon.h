// The szsec archive service daemon (`szsec_cli serve`).
//
// A long-running process accepting concurrent compress / decompress /
// verify / salvage jobs from many clients over a Unix-domain socket
// (protocol in service/protocol.h; normative layout in
// docs/FORMATS.md).  Resource model:
//
//  * One shared parallel::ThreadPool executes every job body.  Each job
//    runs its codec single-threaded (ChunkedConfig::threads = 1), so
//    concurrency comes from many jobs in flight, never from nested
//    pools.
//  * One shared BufferPool recycles request/response frame buffers
//    across connections, so steady-state frame handling performs no
//    heap allocation.
//  * Fairness: queued jobs are dispatched round-robin across tenants
//    (FairTenantQueue) — a tenant flooding the queue cannot starve the
//    others; it only queues behind itself.
//  * Admission control: the total payload bytes of admitted-but-
//    unfinished jobs are capped at ServiceConfig::
//    admission_budget_bytes.  A job that would exceed the budget is
//    rejected immediately with Status::kOverloaded (backpressure — the
//    client should retry), keeping daemon memory bounded the same way
//    the streaming codec bounds RSS by its in-flight window.
//  * Keys: per-tenant master keys live in a TenantKeyring; every job
//    uses an HKDF-derived data key bound to (tenant, key id), and the
//    response records which id was used (service/keyring.h).
//
// Shutdown is a graceful drain: request_drain() (async-signal-safe —
// callable straight from a SIGTERM handler) stops the accept loop,
// half-closes every connection for reading so idle clients see EOF,
// answers any not-yet-admitted request with Status::kDraining, and lets
// every in-flight job finish and deliver its response before wait()
// returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bufpool.h"
#include "common/io.h"
#include "parallel/thread_pool.h"
#include "service/keyring.h"
#include "service/protocol.h"

namespace szsec::service {

struct ServiceConfig {
  /// Filesystem path of the Unix-domain listening socket.
  std::string socket_path;
  /// Shared pool workers (0 = parallel::default_thread_count()).
  unsigned threads = 0;
  /// In-flight payload byte budget for admission control.
  uint64_t admission_budget_bytes = 256ull << 20;
  /// Per-frame body cap (clamped to protocol kMaxFrameBytes).
  uint64_t max_frame_bytes = kMaxFrameBytes;
  /// v3 chunk count for compress jobs that leave `chunks` at 0.
  uint64_t default_chunks = 4;
};

/// Monotonic counters (a snapshot; see ServiceDaemon::stats()).
struct ServiceStats {
  uint64_t connections_accepted = 0;
  uint64_t jobs_completed = 0;  ///< responses delivered, any status
  uint64_t jobs_rejected = 0;   ///< admission-control rejections
  uint64_t peak_in_flight_bytes = 0;
};

/// Round-robin-fair multi-tenant job queue.  push() files a job under
/// its tenant; pop() serves one job from the tenant at the head of the
/// rotation, then rotates.  A tenant with a deep backlog therefore
/// delays only itself — every other tenant gets a turn per cycle.
/// pop() never blocks and must be called exactly once per push() (the
/// daemon submits one pool ticket per pushed job).
class FairTenantQueue {
 public:
  void push(const std::string& tenant, std::function<void()> job);

  /// Takes one job, honoring the round-robin rotation.  Throws Error if
  /// the queue is empty (a ticket/job mismatch — a daemon bug).
  std::function<void()> pop();

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::deque<std::function<void()>>> queues_;
  std::deque<std::string> order_;  ///< rotation of tenants with jobs
};

/// The daemon.  Construct, start(), then wait(); request_drain() from
/// any thread or signal handler begins shutdown.  The destructor drains
/// and joins if the caller has not already.
class ServiceDaemon {
 public:
  ServiceDaemon(ServiceConfig config, TenantKeyring keyring);
  ~ServiceDaemon();

  ServiceDaemon(const ServiceDaemon&) = delete;
  ServiceDaemon& operator=(const ServiceDaemon&) = delete;

  /// Binds the socket and starts the accept loop.  Throws IoError when
  /// the socket cannot be bound (e.g. a live daemon already owns it).
  void start();

  /// Begins a graceful drain.  Async-signal-safe (only atomics and
  /// write(2)); idempotent.
  void request_drain() noexcept;

  /// Blocks until the drain completes: accept loop exited, every
  /// connection closed, every in-flight job responded.
  void wait();

  /// request_drain() + wait().
  void stop();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  ServiceStats stats() const;

  /// The shared frame BufferPool (tests assert its high-water mark
  /// stays within the admission budget).
  BufferPool& buffer_pool() { return buffer_pool_; }

  const std::string& socket_path() const { return config_.socket_path; }

  /// Executes one job to completion on the calling thread (the shared
  /// pool in production; tests may call it directly).  Never throws —
  /// failures become typed Status values.
  JobResponse run_job(JobRequest req);

 private:
  struct Connection {
    std::thread thread;
    std::atomic<int> fd{-1};  ///< for drain-time shutdown; -1 once closed
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void handle_connection(Connection* conn, OwnedFd fd);
  void drain_connections() noexcept;
  void reap_finished_locked();

  bool try_admit(uint64_t cost);
  void release_admission(uint64_t cost);

  ServiceConfig config_;
  TenantKeyring keyring_;
  BufferPool buffer_pool_;
  FairTenantQueue queue_;
  std::unique_ptr<parallel::ThreadPool> pool_;
  std::unique_ptr<UnixListener> listener_;
  std::thread accept_thread_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};

  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::mutex admit_mu_;
  uint64_t in_flight_bytes_ = 0;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> jobs_completed_{0};
  std::atomic<uint64_t> jobs_rejected_{0};
  std::atomic<uint64_t> peak_in_flight_bytes_{0};
};

}  // namespace szsec::service
