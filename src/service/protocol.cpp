#include "service/protocol.h"

#include <bit>
#include <cstring>

namespace szsec::service {

const char* to_string(JobOp op) {
  switch (op) {
    case JobOp::kPing:
      return "ping";
    case JobOp::kCompress:
      return "compress";
    case JobOp::kDecompress:
      return "decompress";
    case JobOp::kVerify:
      return "verify";
    case JobOp::kSalvage:
      return "salvage";
  }
  return "?";
}

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kDataError:
      return "data-error";
    case Status::kCryptoError:
      return "crypto-error";
    case Status::kBadRequest:
      return "bad-request";
    case Status::kOverloaded:
      return "overloaded";
    case Status::kDraining:
      return "draining";
    case Status::kUnknownTenant:
      return "unknown-tenant";
    case Status::kInternalError:
      return "internal-error";
  }
  return "?";
}

namespace {

/// Prepends the frame header to a finished body.
Bytes frame(uint32_t magic, ByteWriter&& body) {
  const Bytes b = body.take();
  ByteWriter out(sizeof(uint32_t) + sizeof(uint64_t) + b.size());
  out.put_u32(magic);
  out.put_u64(b.size());
  out.put_bytes(BytesView(b));
  return out.take();
}

}  // namespace

Bytes encode_request(const JobRequest& req) {
  ByteWriter w(64 + req.payload.size());
  w.put_u8(kProtocolVersion);
  w.put_u8(static_cast<uint8_t>(req.op));
  w.put_string(req.tenant);
  w.put_varint(req.key_id);
  w.put_u8(static_cast<uint8_t>(req.scheme));
  w.put_u8(static_cast<uint8_t>(req.mode));
  w.put_u8(req.authenticate ? 1 : 0);
  w.put_u8(static_cast<uint8_t>(req.dtype));
  const size_t rank = req.have_dims ? req.dims.rank() : 0;
  w.put_u8(static_cast<uint8_t>(rank));
  for (size_t i = 0; i < rank; ++i) w.put_varint(req.dims[i]);
  w.put_u64(std::bit_cast<uint64_t>(req.error_bound));
  w.put_varint(req.chunks);
  w.put_blob(BytesView(req.payload));
  return frame(kRequestMagic, std::move(w));
}

Bytes encode_response(const JobResponse& resp) {
  ByteWriter w(64 + resp.payload.size());
  w.put_u8(kProtocolVersion);
  w.put_u8(static_cast<uint8_t>(resp.status));
  w.put_string(resp.detail);
  w.put_varint(resp.key_id);
  w.put_varint(resp.raw_bytes);
  w.put_varint(resp.archive_bytes);
  w.put_blob(BytesView(resp.payload));
  return frame(kResponseMagic, std::move(w));
}

JobRequest parse_request(BytesView body) {
  ByteReader r(body);
  const uint8_t version = r.get_u8();
  SZSEC_CHECK_FORMAT(version == kProtocolVersion,
                     "unsupported protocol version");
  JobRequest req;
  const uint8_t op = r.get_u8();
  SZSEC_CHECK_FORMAT(op <= static_cast<uint8_t>(JobOp::kSalvage),
                     "unknown job op");
  req.op = static_cast<JobOp>(op);
  req.tenant = r.get_string();
  SZSEC_CHECK_FORMAT(req.tenant.size() <= kMaxTenantBytes,
                     "tenant id too long");
  req.key_id = r.get_varint();
  const uint8_t scheme = r.get_u8();
  SZSEC_CHECK_FORMAT(
      scheme <= static_cast<uint8_t>(core::Scheme::kEncrHuffman),
      "unknown scheme");
  req.scheme = static_cast<core::Scheme>(scheme);
  const uint8_t mode = r.get_u8();
  SZSEC_CHECK_FORMAT(mode <= static_cast<uint8_t>(crypto::Mode::kEcb),
                     "unknown cipher mode");
  req.mode = static_cast<crypto::Mode>(mode);
  req.authenticate = r.get_u8() != 0;
  const uint8_t dtype = r.get_u8();
  SZSEC_CHECK_FORMAT(dtype <= 1, "unknown dtype");
  req.dtype = static_cast<sz::DType>(dtype);
  const uint8_t rank = r.get_u8();
  SZSEC_CHECK_FORMAT(rank <= Dims::kMaxRank, "bad rank");
  if (rank > 0) {
    size_t extents[Dims::kMaxRank] = {};
    for (size_t i = 0; i < rank; ++i) {
      extents[i] = static_cast<size_t>(r.get_varint());
    }
    checked_field_elements(extents, rank);  // caps + overflow guard
    switch (rank) {
      case 1:
        req.dims = Dims{extents[0]};
        break;
      case 2:
        req.dims = Dims{extents[0], extents[1]};
        break;
      case 3:
        req.dims = Dims{extents[0], extents[1], extents[2]};
        break;
      default:
        req.dims = Dims{extents[0], extents[1], extents[2], extents[3]};
        break;
    }
    req.have_dims = true;
  }
  req.error_bound = std::bit_cast<double>(r.get_u64());
  req.chunks = r.get_varint();
  const BytesView payload = r.get_blob();
  req.payload.assign(payload.begin(), payload.end());
  SZSEC_CHECK_FORMAT(r.done(), "trailing bytes after request");
  return req;
}

JobResponse parse_response(BytesView body) {
  ByteReader r(body);
  const uint8_t version = r.get_u8();
  SZSEC_CHECK_FORMAT(version == kProtocolVersion,
                     "unsupported protocol version");
  JobResponse resp;
  const uint8_t status = r.get_u8();
  SZSEC_CHECK_FORMAT(
      status <= static_cast<uint8_t>(Status::kInternalError),
      "unknown status");
  resp.status = static_cast<Status>(status);
  resp.detail = r.get_string();
  resp.key_id = r.get_varint();
  resp.raw_bytes = r.get_varint();
  resp.archive_bytes = r.get_varint();
  const BytesView payload = r.get_blob();
  resp.payload.assign(payload.begin(), payload.end());
  SZSEC_CHECK_FORMAT(r.done(), "trailing bytes after response");
  return resp;
}

std::optional<Bytes> read_frame(ByteSource& in, uint32_t expected_magic,
                                uint64_t max_body_bytes, BufferPool* pool) {
  uint8_t header[sizeof(uint32_t) + sizeof(uint64_t)];
  const size_t got = read_full(in, std::span<uint8_t>(header));
  if (got == 0) return std::nullopt;  // clean hang-up between frames
  SZSEC_CHECK_FORMAT(got == sizeof(header), "stream ended mid frame header");
  uint32_t magic = 0;
  uint64_t body_len = 0;
  std::memcpy(&magic, header, sizeof(magic));
  std::memcpy(&body_len, header + sizeof(magic), sizeof(body_len));
  SZSEC_CHECK_FORMAT(magic == expected_magic, "bad frame magic");
  uint64_t cap = kMaxFrameBytes;
  if (max_body_bytes != 0 && max_body_bytes < cap) cap = max_body_bytes;
  SZSEC_CHECK_FORMAT(body_len <= cap, "frame exceeds size limit");
  // The length is now within the cap, so sizing a buffer from it is
  // safe.  Fixed-size block reads would also work, but a whole-body
  // read keeps the hot path at one syscall per frame.
  PooledBytes body(pool, static_cast<size_t>(body_len));
  body.bytes().resize(static_cast<size_t>(body_len));
  const size_t n =
      read_full(in, std::span<uint8_t>(body.bytes().data(),
                                       body.bytes().size()));
  SZSEC_CHECK_FORMAT(n == body_len, "stream ended mid frame body");
  return body.take();
}

void write_frame(ByteSink& out, BytesView frame) {
  out.write(frame);
  out.flush();
}

}  // namespace szsec::service
