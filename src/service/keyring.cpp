#include "service/keyring.h"

#include "common/error.h"
#include "crypto/sha256.h"

namespace szsec::service {

namespace {

/// Domain-separation salt for every service data-key derivation.  A
/// fixed, public salt is sound for HKDF (RFC 5869 Section 3.1) — the
/// secrecy lives in the master key; the salt separates this use from
/// any other HKDF consumer of the same master.
constexpr char kDataKeySalt[] = "szsec/service/data-key/v1";

}  // namespace

uint64_t TenantKeyring::add_key(const std::string& tenant,
                                BytesView master_key, uint64_t key_id) {
  SZSEC_REQUIRE(!tenant.empty(), "tenant name must not be empty");
  SZSEC_REQUIRE(!master_key.empty(), "master key must not be empty");
  std::lock_guard<std::mutex> lock(mu_);
  TenantKeys& keys = tenants_[tenant];
  uint64_t id = key_id;
  if (id == 0) {
    id = keys.masters.empty() ? 1 : keys.masters.rbegin()->first + 1;
  }
  SZSEC_REQUIRE(keys.masters.find(id) == keys.masters.end(),
                "duplicate key id for tenant");
  keys.masters.emplace(id, Bytes(master_key.begin(), master_key.end()));
  if (id > keys.active) keys.active = id;
  return id;
}

uint64_t TenantKeyring::rotate(const std::string& tenant,
                               BytesView new_master) {
  return add_key(tenant, new_master);
}

bool TenantKeyring::has_tenant(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.find(tenant) != tenants_.end();
}

uint64_t TenantKeyring::active_key_id(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.active;
}

size_t TenantKeyring::tenant_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

std::optional<DataKey> TenantKeyring::derive_data_key(
    const std::string& tenant, uint64_t key_id, size_t key_bytes) const {
  Bytes master;
  uint64_t id = key_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = tenants_.find(tenant);
    if (it == tenants_.end()) return std::nullopt;
    if (id == 0) id = it->second.active;
    const auto kit = it->second.masters.find(id);
    if (kit == it->second.masters.end()) return std::nullopt;
    master = kit->second;  // copy so HKDF runs outside the lock
  }
  // The info string binds tenant identity and key id into the derived
  // key; two tenants sharing a master key (or one tenant's two ids)
  // still get unrelated data keys.
  const std::string info =
      "szsec-data-key|tenant=" + tenant + "|id=" + std::to_string(id);
  DataKey out;
  out.key_id = id;
  out.key = crypto::hkdf_sha256(
      BytesView(master),
      BytesView(reinterpret_cast<const uint8_t*>(kDataKeySalt),
                sizeof(kDataKeySalt) - 1),
      BytesView(reinterpret_cast<const uint8_t*>(info.data()), info.size()),
      key_bytes);
  return out;
}

}  // namespace szsec::service
