// Special functions needed by the SP800-22 statistical tests.
//
// igamc/igam follow the Cephes/Numerical-Recipes formulation (series
// expansion below the a+1 crossover, continued fraction above), which is
// the same evaluation the NIST STS reference code uses, so our p-values
// match the published examples to ~1e-6 (verified in tests/nist_test.cpp).
#pragma once

namespace szsec::nist {

/// Regularized upper incomplete gamma function Q(a, x) = Γ(a,x)/Γ(a).
double igamc(double a, double x);

/// Regularized lower incomplete gamma function P(a, x) = 1 - Q(a, x).
double igam(double a, double x);

/// Standard normal cumulative distribution function Φ(x).
double normal_cdf(double x);

}  // namespace szsec::nist
