#include "nist/sp800_22.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <complex>
#include <numbers>

#include "common/error.h"
#include "nist/special_functions.h"

namespace szsec::nist {

namespace {

// Computational caps that keep the suite fast on a single laptop core
// without changing any test's statistical validity: the capped tests
// simply evaluate on a prefix (chi-square statistics scale with the number
// of blocks actually processed).  The STS reference has no caps but is
// typically run on short streams; ours routinely sees multi-megabit input.
constexpr size_t kDftMaxBits = 1u << 20;           // spectral test FFT size
constexpr size_t kLinearComplexityMaxBlocks = 64;  // BM blocks

double pvalue_clamp(double p) {
  if (std::isnan(p)) return 0.0;
  return std::clamp(p, 0.0, 1.0);
}

}  // namespace

BitSequence::BitSequence(BytesView bytes) {
  bits_.resize(bytes.size() * 8);
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      bits_[i * 8 + b] = (bytes[i] >> (7 - b)) & 1;
    }
  }
}

// --- 2.1 Frequency (monobit) ----------------------------------------------

// Note on `applicable`: it reflects the spec's recommended sample-size
// floors.  P-values are still computed whenever mathematically defined
// (the spec's own worked examples use tiny sequences), so callers can
// reproduce those examples; the pass-rate harness honours `applicable`.
TestResult frequency(const BitSequence& s) {
  TestResult r{"Frequency", {}, s.size() >= 100};
  if (s.size() == 0) {
    r.applicable = false;
    return r;
  }
  int64_t sum = 0;
  for (size_t i = 0; i < s.size(); ++i) sum += 2 * s.bit(i) - 1;
  const double s_obs =
      std::abs(static_cast<double>(sum)) / std::sqrt(static_cast<double>(s.size()));
  r.p_values.push_back(pvalue_clamp(std::erfc(s_obs / std::numbers::sqrt2)));
  return r;
}

// --- 2.2 Block frequency ---------------------------------------------------

TestResult block_frequency(const BitSequence& s, size_t block_len) {
  const size_t n_blocks = s.size() / block_len;
  TestResult r{"Block frequency", {}, n_blocks >= 1 && s.size() >= 100};
  if (n_blocks == 0) {
    r.applicable = false;
    return r;
  }
  double chi2 = 0;
  for (size_t b = 0; b < n_blocks; ++b) {
    size_t ones = 0;
    for (size_t i = 0; i < block_len; ++i) ones += s.bit(b * block_len + i);
    const double pi = static_cast<double>(ones) / block_len;
    chi2 += (pi - 0.5) * (pi - 0.5);
  }
  chi2 *= 4.0 * static_cast<double>(block_len);
  r.p_values.push_back(
      pvalue_clamp(igamc(static_cast<double>(n_blocks) / 2.0, chi2 / 2.0)));
  return r;
}

// --- 2.3 Runs ---------------------------------------------------------------

TestResult runs(const BitSequence& s) {
  TestResult r{"Runs", {}, s.size() >= 100};
  if (s.size() < 2) {
    r.applicable = false;
    return r;
  }
  const size_t n = s.size();
  size_t ones = 0;
  for (size_t i = 0; i < n; ++i) ones += s.bit(i);
  const double pi = static_cast<double>(ones) / n;
  // Prerequisite frequency check (SP800-22 eq. 2.3.4).
  if (std::abs(pi - 0.5) >= 2.0 / std::sqrt(static_cast<double>(n))) {
    r.p_values.push_back(0.0);
    return r;
  }
  size_t v = 1;
  for (size_t i = 1; i < n; ++i) v += s.bit(i) != s.bit(i - 1);
  const double num =
      std::abs(static_cast<double>(v) - 2.0 * n * pi * (1.0 - pi));
  const double den = 2.0 * std::sqrt(2.0 * n) * pi * (1.0 - pi);
  r.p_values.push_back(pvalue_clamp(std::erfc(num / den)));
  return r;
}

// --- 2.4 Longest run of ones ------------------------------------------------

TestResult longest_run_of_ones(const BitSequence& s) {
  TestResult r{"Long runs of one's", {}, s.size() >= 128};
  if (!r.applicable) return r;
  const size_t n = s.size();
  size_t m;
  std::vector<int> v_bounds;
  std::vector<double> pi;
  if (n < 6272) {
    m = 8;
    v_bounds = {1, 2, 3, 4};
    pi = {0.2148, 0.3672, 0.2305, 0.1875};
  } else if (n < 750000) {
    m = 128;
    v_bounds = {4, 5, 6, 7, 8, 9};
    pi = {0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124};
  } else {
    m = 10000;
    v_bounds = {10, 11, 12, 13, 14, 15, 16};
    pi = {0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727};
  }
  const size_t n_blocks = n / m;
  std::vector<double> nu(pi.size(), 0);
  for (size_t b = 0; b < n_blocks; ++b) {
    int longest = 0, run = 0;
    for (size_t i = 0; i < m; ++i) {
      run = s.bit(b * m + i) ? run + 1 : 0;
      longest = std::max(longest, run);
    }
    // Clamp into the category bounds [first, last].
    size_t cat = 0;
    while (cat + 1 < v_bounds.size() &&
           longest > v_bounds[cat]) {
      ++cat;
    }
    if (longest <= v_bounds.front()) cat = 0;
    if (longest >= v_bounds.back()) cat = v_bounds.size() - 1;
    nu[cat] += 1;
  }
  double chi2 = 0;
  const double nb = static_cast<double>(n_blocks);
  for (size_t k = 0; k < pi.size(); ++k) {
    const double e = nb * pi[k];
    chi2 += (nu[k] - e) * (nu[k] - e) / e;
  }
  r.p_values.push_back(pvalue_clamp(
      igamc(static_cast<double>(pi.size() - 1) / 2.0, chi2 / 2.0)));
  return r;
}

// --- 2.5 Binary matrix rank -------------------------------------------------

namespace {
// Rank over GF(2) of a 32x32 matrix given as 32 uint32 rows.
int rank_gf2(std::array<uint32_t, 32> rows) {
  int rank = 0;
  for (int col = 31; col >= 0 && rank < 32; --col) {
    const uint32_t mask = 1u << col;
    int pivot = -1;
    for (int i = rank; i < 32; ++i) {
      if (rows[i] & mask) {
        pivot = i;
        break;
      }
    }
    if (pivot < 0) continue;
    std::swap(rows[rank], rows[pivot]);
    for (int i = 0; i < 32; ++i) {
      if (i != rank && (rows[i] & mask)) rows[i] ^= rows[rank];
    }
    ++rank;
  }
  return rank;
}
}  // namespace

TestResult binary_matrix_rank(const BitSequence& s) {
  const size_t bits_per_matrix = 32 * 32;
  const size_t n_mat = s.size() / bits_per_matrix;
  TestResult r{"Binary Matrix Rank", {}, n_mat >= 38};
  if (n_mat == 0) {
    r.applicable = false;
    return r;
  }
  size_t f32 = 0, f31 = 0;
  for (size_t mtx = 0; mtx < n_mat; ++mtx) {
    std::array<uint32_t, 32> rows{};
    for (int row = 0; row < 32; ++row) {
      uint32_t w = 0;
      for (int col = 0; col < 32; ++col) {
        w = (w << 1) |
            static_cast<uint32_t>(
                s.bit(mtx * bits_per_matrix + row * 32 + col));
      }
      rows[row] = w;
    }
    const int rank = rank_gf2(rows);
    if (rank == 32) {
      ++f32;
    } else if (rank == 31) {
      ++f31;
    }
  }
  const double nm = static_cast<double>(n_mat);
  const double p32 = 0.2888, p31 = 0.5776, p30 = 0.1336;
  const double f30 = nm - f32 - f31;
  const double chi2 = (f32 - p32 * nm) * (f32 - p32 * nm) / (p32 * nm) +
                      (f31 - p31 * nm) * (f31 - p31 * nm) / (p31 * nm) +
                      (f30 - p30 * nm) * (f30 - p30 * nm) / (p30 * nm);
  r.p_values.push_back(pvalue_clamp(std::exp(-chi2 / 2.0)));
  return r;
}

// --- 2.6 Spectral (DFT) -----------------------------------------------------

namespace {
void fft_inplace(std::vector<std::complex<double>>& a) {
  const size_t n = a.size();
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    const double ang = -2.0 * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wl(std::cos(ang), std::sin(ang));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0);
      for (size_t k = 0; k < len / 2; ++k) {
        const auto u = a[i + k];
        const auto v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
}
}  // namespace

TestResult spectral_dft(const BitSequence& s) {
  TestResult r{"Spectral DFT", {}, s.size() >= 1000};
  if (s.size() < 16) {
    r.applicable = false;
    return r;
  }
  // Evaluate on the largest power-of-two prefix (capped — see kDftMaxBits).
  size_t n = 1;
  while (n * 2 <= std::min(s.size(), kDftMaxBits)) n *= 2;
  std::vector<std::complex<double>> x(n);
  for (size_t i = 0; i < n; ++i) x[i] = 2.0 * s.bit(i) - 1.0;
  fft_inplace(x);
  const double threshold =
      std::sqrt(std::log(1.0 / 0.05) * static_cast<double>(n));
  const double n0 = 0.95 * static_cast<double>(n) / 2.0;
  double n1 = 0;
  for (size_t j = 0; j < n / 2; ++j) n1 += std::abs(x[j]) < threshold;
  const double d = (n1 - n0) / std::sqrt(static_cast<double>(n) * 0.95 *
                                         0.05 / 4.0);
  r.p_values.push_back(
      pvalue_clamp(std::erfc(std::abs(d) / std::numbers::sqrt2)));
  return r;
}

// --- 2.7 Non-overlapping template matching ----------------------------------

TestResult non_overlapping_template(const BitSequence& s,
                                    const std::string& tmpl) {
  const size_t m = tmpl.size();
  constexpr size_t kBlocks = 8;
  const size_t block_len = s.size() / kBlocks;
  TestResult r{"No overlapping templates", {},
               m >= 2 && m <= 21 && block_len > m && s.size() >= 8 * m};
  if (!r.applicable) return r;

  uint32_t pattern = 0;
  for (char c : tmpl) pattern = (pattern << 1) | (c == '1');
  const uint32_t mask = (1u << m) - 1;

  const double mu =
      static_cast<double>(block_len - m + 1) / std::pow(2.0, m);
  const double sigma2 =
      static_cast<double>(block_len) *
      (1.0 / std::pow(2.0, m) -
       (2.0 * m - 1.0) / std::pow(2.0, 2.0 * m));

  double chi2 = 0;
  for (size_t b = 0; b < kBlocks; ++b) {
    size_t count = 0;
    uint32_t window = 0;
    size_t filled = 0;
    size_t i = 0;
    while (i < block_len) {
      window = ((window << 1) | static_cast<uint32_t>(
                                    s.bit(b * block_len + i))) &
               mask;
      ++filled;
      ++i;
      if (filled >= m && window == pattern) {
        ++count;
        filled = 0;  // non-overlapping: restart the window
        window = 0;
      }
    }
    chi2 += (count - mu) * (count - mu) / sigma2;
  }
  r.p_values.push_back(
      pvalue_clamp(igamc(kBlocks / 2.0, chi2 / 2.0)));
  return r;
}

std::vector<std::string> aperiodic_templates(unsigned m) {
  SZSEC_REQUIRE(m >= 2 && m <= 16, "template length must be 2..16");
  std::vector<std::string> out;
  const uint32_t total = 1u << m;
  for (uint32_t v = 0; v < total; ++v) {
    // Unbordered: no proper prefix equals the same-length suffix.
    bool aperiodic = true;
    for (unsigned k = 1; k < m && aperiodic; ++k) {
      // Compare prefix of length m-k with suffix of length m-k:
      // bits [m-1 .. k] (prefix) vs bits [m-1-k .. 0] (suffix).
      const uint32_t mask = (1u << (m - k)) - 1;
      if (((v >> k) & mask) == (v & mask)) aperiodic = false;
    }
    if (!aperiodic) continue;
    std::string s(m, '0');
    for (unsigned i = 0; i < m; ++i) {
      if ((v >> (m - 1 - i)) & 1) s[i] = '1';
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<TestResult> non_overlapping_template_suite(
    const BitSequence& s, unsigned m, size_t max_templates) {
  const std::vector<std::string> all = aperiodic_templates(m);
  std::vector<TestResult> results;
  const size_t count = std::min(max_templates, all.size());
  const size_t step = std::max<size_t>(1, all.size() / count);
  for (size_t i = 0; i < all.size() && results.size() < count; i += step) {
    TestResult r = non_overlapping_template(s, all[i]);
    r.name = "No overlapping templates [" + all[i] + "]";
    results.push_back(std::move(r));
  }
  return results;
}

// --- 2.8 Overlapping template matching --------------------------------------

TestResult overlapping_template(const BitSequence& s) {
  constexpr size_t m = 9;       // all-ones template
  constexpr size_t kM = 1032;   // block length (SP800-22 example value)
  const size_t n_blocks = s.size() / kM;
  TestResult r{"Overlapping templates", {}, n_blocks >= 100};
  if (n_blocks == 0) {
    r.applicable = false;
    return r;
  }
  // Category probabilities from the STS reference implementation.
  const std::array<double, 6> pi = {0.364091, 0.185659, 0.139381,
                                    0.100571, 0.070432, 0.139865};
  std::array<double, 6> nu{};
  for (size_t b = 0; b < n_blocks; ++b) {
    size_t count = 0;
    size_t run = 0;
    for (size_t i = 0; i < kM; ++i) {
      run = s.bit(b * kM + i) ? run + 1 : 0;
      if (run >= m) ++count;  // overlapping occurrences
    }
    nu[std::min<size_t>(count, 5)] += 1;
  }
  double chi2 = 0;
  const double nb = static_cast<double>(n_blocks);
  for (size_t k = 0; k < 6; ++k) {
    const double e = nb * pi[k];
    chi2 += (nu[k] - e) * (nu[k] - e) / e;
  }
  r.p_values.push_back(pvalue_clamp(igamc(5.0 / 2.0, chi2 / 2.0)));
  return r;
}

// --- 2.9 Maurer's universal test --------------------------------------------

TestResult universal(const BitSequence& s) {
  const size_t n = s.size();
  TestResult r{"Universal", {}, n >= 387840};
  if (!r.applicable) return r;
  // L and reference constants per SP800-22 Table in section 2.9.
  struct Row {
    size_t min_n;
    unsigned l;
    double expected, variance;
  };
  static const Row rows[] = {
      {1059061760, 16, 15.167379, 3.421}, {496435200, 15, 14.167488, 3.419},
      {231669760, 14, 13.167693, 3.416},  {107560960, 13, 12.168070, 3.410},
      {49643520, 12, 11.168765, 3.401},   {22753280, 11, 10.170032, 3.384},
      {10342400, 10, 9.1723243, 3.356},   {4654080, 9, 8.1764248, 3.311},
      {2068480, 8, 7.1836656, 3.238},     {904960, 7, 6.1962507, 3.125},
      {387840, 6, 5.2177052, 2.954},
  };
  unsigned L = 6;
  double expected = 5.2177052, variance = 2.954;
  for (const Row& row : rows) {
    if (n >= row.min_n) {
      L = row.l;
      expected = row.expected;
      variance = row.variance;
      break;
    }
  }
  const size_t q = 10u << L;  // 10 * 2^L initialization blocks
  const size_t total_blocks = n / L;
  const size_t k = total_blocks - q;

  std::vector<size_t> last_seen(size_t{1} << L, 0);
  auto block_value = [&](size_t b) {
    uint32_t v = 0;
    for (unsigned i = 0; i < L; ++i) {
      v = (v << 1) | static_cast<uint32_t>(s.bit(b * L + i));
    }
    return v;
  };
  for (size_t b = 0; b < q; ++b) last_seen[block_value(b)] = b + 1;
  double sum = 0;
  for (size_t b = q; b < total_blocks; ++b) {
    const uint32_t v = block_value(b);
    sum += std::log2(static_cast<double>(b + 1 - last_seen[v]));
    last_seen[v] = b + 1;
  }
  const double fn = sum / static_cast<double>(k);
  const double c = 0.7 - 0.8 / L +
                   (4.0 + 32.0 / L) *
                       std::pow(static_cast<double>(k), -3.0 / L) / 15.0;
  const double sigma = c * std::sqrt(variance / static_cast<double>(k));
  r.p_values.push_back(pvalue_clamp(
      std::erfc(std::abs(fn - expected) / (std::numbers::sqrt2 * sigma))));
  return r;
}

// --- 2.10 Linear complexity --------------------------------------------------

namespace {
// Berlekamp-Massey: linear complexity of `bits` (0/1 bytes).
size_t berlekamp_massey(const uint8_t* bits, size_t n) {
  std::vector<uint8_t> c(n, 0), b(n, 0), t;
  c[0] = b[0] = 1;
  size_t l = 0, m_idx = 0;
  for (size_t i = 0; i < n; ++i) {
    // Discrepancy.
    int d = bits[i];
    for (size_t j = 1; j <= l; ++j) d ^= c[j] & bits[i - j];
    if (d == 1) {
      t = c;
      const size_t shift = i - m_idx;
      for (size_t j = 0; j + shift < n; ++j) c[j + shift] ^= b[j];
      if (l <= i / 2) {
        l = i + 1 - l;
        m_idx = i;
        b = t;
      }
    }
  }
  return l;
}
}  // namespace

TestResult linear_complexity(const BitSequence& s, size_t block_len) {
  const size_t n_blocks =
      std::min(s.size() / block_len, kLinearComplexityMaxBlocks);
  TestResult r{"Linear complexity", {}, n_blocks >= 20 && block_len >= 500};
  if (n_blocks == 0) {
    r.applicable = false;
    return r;
  }
  const double m = static_cast<double>(block_len);
  const double sign_m = (block_len % 2 == 0) ? 1.0 : -1.0;
  const double mu = m / 2.0 + (9.0 - sign_m) / 36.0 -
                    (m / 3.0 + 2.0 / 9.0) / std::pow(2.0, m);
  static const std::array<double, 7> pi = {0.010417, 0.03125, 0.125, 0.5,
                                           0.25,     0.0625,  0.020833};
  std::array<double, 7> nu{};
  for (size_t b = 0; b < n_blocks; ++b) {
    const size_t l =
        berlekamp_massey(s.bits().data() + b * block_len, block_len);
    const double t =
        sign_m * (static_cast<double>(l) - mu) + 2.0 / 9.0;
    size_t cat;
    if (t <= -2.5) {
      cat = 0;
    } else if (t <= -1.5) {
      cat = 1;
    } else if (t <= -0.5) {
      cat = 2;
    } else if (t <= 0.5) {
      cat = 3;
    } else if (t <= 1.5) {
      cat = 4;
    } else if (t <= 2.5) {
      cat = 5;
    } else {
      cat = 6;
    }
    nu[cat] += 1;
  }
  double chi2 = 0;
  const double nb = static_cast<double>(n_blocks);
  for (size_t k = 0; k < 7; ++k) {
    const double e = nb * pi[k];
    chi2 += (nu[k] - e) * (nu[k] - e) / e;
  }
  r.p_values.push_back(pvalue_clamp(igamc(3.0, chi2 / 2.0)));
  return r;
}

// --- 2.11 Serial -------------------------------------------------------------

namespace {
// psi-squared statistic for overlapping m-bit patterns (with wraparound).
double psi_squared(const BitSequence& s, unsigned m) {
  if (m == 0) return 0.0;
  const size_t n = s.size();
  std::vector<uint32_t> counts(size_t{1} << m, 0);
  uint32_t window = 0;
  const uint32_t mask = (m >= 32) ? 0xFFFFFFFFu : ((1u << m) - 1);
  // Prime the window with the first m-1 bits.
  for (unsigned i = 0; i + 1 < m; ++i) {
    window = ((window << 1) | static_cast<uint32_t>(s.bit(i))) & mask;
  }
  for (size_t i = 0; i < n; ++i) {
    const size_t idx = (i + m - 1) % n;  // wraparound
    window = ((window << 1) | static_cast<uint32_t>(s.bit(idx))) & mask;
    ++counts[window];
  }
  double sum = 0;
  for (uint32_t c : counts) sum += static_cast<double>(c) * c;
  return sum * std::pow(2.0, m) / static_cast<double>(n) -
         static_cast<double>(n);
}
}  // namespace

TestResult serial(const BitSequence& s, unsigned m) {
  const size_t n = s.size();
  if (m == 0) {
    // Default: largest m with m < floor(log2 n) - 2, capped at 16.
    const unsigned log2n =
        static_cast<unsigned>(std::floor(std::log2(static_cast<double>(
            std::max<size_t>(n, 8)))));
    m = std::min(16u, log2n > 3 ? log2n - 3 : 1u);
  }
  TestResult r{"Serial", {}, n >= 100 && m >= 2};
  if (n < m || m < 1) {
    r.applicable = false;
    return r;
  }
  const double psi_m = psi_squared(s, m);
  const double psi_m1 = psi_squared(s, m - 1);
  const double psi_m2 = m >= 2 ? psi_squared(s, m - 2) : 0.0;
  const double d1 = psi_m - psi_m1;
  const double d2 = psi_m - 2.0 * psi_m1 + psi_m2;
  r.p_values.push_back(
      pvalue_clamp(igamc(std::pow(2.0, static_cast<double>(m) - 2.0), d1 / 2.0)));
  r.p_values.push_back(
      pvalue_clamp(igamc(std::pow(2.0, static_cast<double>(m) - 3.0), d2 / 2.0)));
  return r;
}

// --- 2.12 Approximate entropy ------------------------------------------------

namespace {
double phi(const BitSequence& s, unsigned m) {
  if (m == 0) return 0.0;
  const size_t n = s.size();
  std::vector<uint32_t> counts(size_t{1} << m, 0);
  const uint32_t mask = (1u << m) - 1;
  uint32_t window = 0;
  for (unsigned i = 0; i + 1 < m; ++i) {
    window = ((window << 1) | static_cast<uint32_t>(s.bit(i))) & mask;
  }
  for (size_t i = 0; i < n; ++i) {
    const size_t idx = (i + m - 1) % n;
    window = ((window << 1) | static_cast<uint32_t>(s.bit(idx))) & mask;
    ++counts[window];
  }
  double sum = 0;
  for (uint32_t c : counts) {
    if (c > 0) {
      const double p = static_cast<double>(c) / static_cast<double>(n);
      sum += p * std::log(p);
    }
  }
  return sum;
}
}  // namespace

TestResult approximate_entropy(const BitSequence& s, unsigned m) {
  const size_t n = s.size();
  if (m == 0) {
    const unsigned log2n =
        static_cast<unsigned>(std::floor(std::log2(static_cast<double>(
            std::max<size_t>(n, 64)))));
    m = std::min(10u, log2n > 5 ? log2n - 6 : 1u);
  }
  TestResult r{"Approximate entropy", {}, n >= 100};
  if (n < m + 1) {
    r.applicable = false;
    return r;
  }
  const double ap_en = phi(s, m) - phi(s, m + 1);
  const double chi2 =
      2.0 * static_cast<double>(n) * (std::log(2.0) - ap_en);
  r.p_values.push_back(pvalue_clamp(
      igamc(std::pow(2.0, static_cast<double>(m) - 1.0), chi2 / 2.0)));
  return r;
}

// --- 2.13 Cumulative sums ----------------------------------------------------

namespace {
double cusum_pvalue(size_t n, int64_t z) {
  if (z == 0) return 0.0;
  const double zn = static_cast<double>(z);
  const double sqn = std::sqrt(static_cast<double>(n));
  double sum1 = 0;
  const int64_t k_lo1 = (-static_cast<int64_t>(n) / z + 1) / 4;
  const int64_t k_hi1 = (static_cast<int64_t>(n) / z - 1) / 4;
  for (int64_t k = k_lo1; k <= k_hi1; ++k) {
    sum1 += normal_cdf((4.0 * k + 1.0) * zn / sqn) -
            normal_cdf((4.0 * k - 1.0) * zn / sqn);
  }
  double sum2 = 0;
  const int64_t k_lo2 = (-static_cast<int64_t>(n) / z - 3) / 4;
  const int64_t k_hi2 = (static_cast<int64_t>(n) / z - 1) / 4;
  for (int64_t k = k_lo2; k <= k_hi2; ++k) {
    sum2 += normal_cdf((4.0 * k + 3.0) * zn / sqn) -
            normal_cdf((4.0 * k + 1.0) * zn / sqn);
  }
  return 1.0 - sum1 + sum2;
}
}  // namespace

TestResult cumulative_sums(const BitSequence& s) {
  TestResult r{"Cumulative sums", {}, s.size() >= 100};
  if (s.size() == 0) {
    r.applicable = false;
    return r;
  }
  const size_t n = s.size();
  // Forward.
  int64_t sum = 0, z_fwd = 0;
  for (size_t i = 0; i < n; ++i) {
    sum += 2 * s.bit(i) - 1;
    z_fwd = std::max<int64_t>(z_fwd, std::abs(sum));
  }
  // Backward.
  sum = 0;
  int64_t z_bwd = 0;
  for (size_t i = n; i-- > 0;) {
    sum += 2 * s.bit(i) - 1;
    z_bwd = std::max<int64_t>(z_bwd, std::abs(sum));
  }
  r.p_values.push_back(pvalue_clamp(cusum_pvalue(n, z_fwd)));
  r.p_values.push_back(pvalue_clamp(cusum_pvalue(n, z_bwd)));
  return r;
}

// --- 2.14 / 2.15 Random excursions (+ variant) -------------------------------

namespace {
// Partial sums S_k with S_0 = 0 prepended and 0 appended, split into
// zero-to-zero cycles.
std::vector<int64_t> partial_sums(const BitSequence& s) {
  std::vector<int64_t> walk;
  walk.reserve(s.size() + 2);
  walk.push_back(0);
  int64_t sum = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    sum += 2 * s.bit(i) - 1;
    walk.push_back(sum);
  }
  walk.push_back(0);
  return walk;
}
}  // namespace

TestResult random_excursions(const BitSequence& s) {
  TestResult r{"Random excursions", {}, s.size() >= 1000};
  if (!r.applicable) return r;
  const std::vector<int64_t> walk = partial_sums(s);
  // Count cycles and per-cycle visit counts for states -4..-1, 1..4.
  static const int states[8] = {-4, -3, -2, -1, 1, 2, 3, 4};
  size_t j_cycles = 0;
  // nu[state][k] = number of cycles with exactly k visits (k capped at 5).
  double nu[8][6] = {};
  size_t cycle_start = 0;
  std::array<size_t, 8> visits{};
  for (size_t i = 1; i < walk.size(); ++i) {
    if (walk[i] == 0) {
      ++j_cycles;
      for (int st = 0; st < 8; ++st) {
        nu[st][std::min<size_t>(visits[st], 5)] += 1;
      }
      visits.fill(0);
      cycle_start = i;
      (void)cycle_start;
    } else if (walk[i] >= -4 && walk[i] <= 4) {
      const int x = static_cast<int>(walk[i]);
      visits[x < 0 ? x + 4 : x + 3] += 1;
    }
  }
  if (j_cycles < std::max<size_t>(
                     500, static_cast<size_t>(
                              0.005 * std::sqrt(static_cast<double>(
                                          s.size()))))) {
    r.applicable = false;
    return r;
  }
  const double j = static_cast<double>(j_cycles);
  for (int st = 0; st < 8; ++st) {
    const double x = std::abs(states[st]);
    // pi_k(x) from SP800-22 section 3.14.
    std::array<double, 6> pi;
    pi[0] = 1.0 - 1.0 / (2.0 * x);
    for (int k = 1; k <= 4; ++k) {
      pi[k] = (1.0 / (4.0 * x * x)) *
              std::pow(1.0 - 1.0 / (2.0 * x), k - 1.0);
    }
    pi[5] = (1.0 / (2.0 * x)) * std::pow(1.0 - 1.0 / (2.0 * x), 4.0);
    double chi2 = 0;
    for (int k = 0; k < 6; ++k) {
      const double e = j * pi[k];
      chi2 += (nu[st][k] - e) * (nu[st][k] - e) / e;
    }
    r.p_values.push_back(pvalue_clamp(igamc(5.0 / 2.0, chi2 / 2.0)));
  }
  return r;
}

TestResult random_excursions_variant(const BitSequence& s) {
  TestResult r{"Random excursions variant", {}, s.size() >= 1000};
  if (!r.applicable) return r;
  const std::vector<int64_t> walk = partial_sums(s);
  size_t j_cycles = 0;
  std::array<size_t, 19> visits{};  // states -9..9 (index x+9), 0 unused
  for (size_t i = 1; i < walk.size(); ++i) {
    if (walk[i] == 0) {
      ++j_cycles;
    } else if (walk[i] >= -9 && walk[i] <= 9) {
      visits[static_cast<size_t>(walk[i] + 9)] += 1;
    }
  }
  if (j_cycles < 500) {
    r.applicable = false;
    return r;
  }
  const double j = static_cast<double>(j_cycles);
  for (int x = -9; x <= 9; ++x) {
    if (x == 0) continue;
    const double xi = static_cast<double>(visits[static_cast<size_t>(x + 9)]);
    const double denom =
        std::sqrt(2.0 * j * (4.0 * std::abs(x) - 2.0));
    r.p_values.push_back(pvalue_clamp(std::erfc(std::abs(xi - j) / denom)));
  }
  return r;
}

// --- Harness -----------------------------------------------------------------

std::vector<TestResult> run_all(const BitSequence& s) {
  return {
      frequency(s),
      block_frequency(s),
      runs(s),
      longest_run_of_ones(s),
      binary_matrix_rank(s),
      spectral_dft(s),
      non_overlapping_template(s),
      overlapping_template(s),
      universal(s),
      linear_complexity(s),
      serial(s),
      approximate_entropy(s),
      cumulative_sums(s),
      random_excursions(s),
      random_excursions_variant(s),
  };
}

std::vector<std::string> test_names() {
  return {"Frequency",
          "Block frequency",
          "Runs",
          "Long runs of one's",
          "Binary Matrix Rank",
          "Spectral DFT",
          "No overlapping templates",
          "Overlapping templates",
          "Universal",
          "Linear complexity",
          "Serial",
          "Approximate entropy",
          "Cumulative sums",
          "Random excursions",
          "Random excursions variant"};
}

PassRateReport pass_rates(BytesView data, size_t num_streams, double alpha) {
  SZSEC_REQUIRE(num_streams >= 1, "need at least one stream");
  PassRateReport report;
  report.names = test_names();
  report.num_streams = num_streams;
  report.pass_rate.assign(report.names.size(), 0.0);
  report.applicable_streams.assign(report.names.size(), 0);

  const size_t chunk = data.size() / num_streams;
  SZSEC_REQUIRE(chunk >= 1, "data too small for requested stream count");
  for (size_t str = 0; str < num_streams; ++str) {
    const BitSequence bits(data.subspan(str * chunk, chunk));
    const std::vector<TestResult> results = run_all(bits);
    for (size_t t = 0; t < results.size(); ++t) {
      if (!results[t].applicable) continue;
      report.applicable_streams[t] += 1;
      if (results[t].passed(alpha)) report.pass_rate[t] += 1.0;
    }
  }
  for (size_t t = 0; t < report.pass_rate.size(); ++t) {
    if (report.applicable_streams[t] > 0) {
      report.pass_rate[t] /= report.applicable_streams[t];
    } else {
      report.pass_rate[t] = -1.0;
    }
  }
  return report;
}

}  // namespace szsec::nist
