// NIST SP800-22 Rev 1a statistical test suite for randomness, implemented
// from the specification (the paper's Section V-F / Table VI instrument).
//
// All 15 tests are provided.  Each returns one or more p-values; a test
// passes at significance level alpha (default 0.01, as in the paper) when
// every p-value is >= alpha.  Tests whose sample-size prerequisites are
// not met report applicable == false and are excluded from pass rates,
// matching the reference STS behaviour.
#pragma once

#include <string>
#include <vector>

#include "common/bytestream.h"

namespace szsec::nist {

/// A bit sequence unpacked to one byte per bit (MSB-first within each
/// input byte) for fast random access by the tests.
class BitSequence {
 public:
  explicit BitSequence(BytesView bytes);
  explicit BitSequence(std::vector<uint8_t> bits) : bits_(std::move(bits)) {}

  int bit(size_t i) const { return bits_[i]; }
  size_t size() const { return bits_.size(); }
  const std::vector<uint8_t>& bits() const { return bits_; }

 private:
  std::vector<uint8_t> bits_;  // each element 0 or 1
};

struct TestResult {
  std::string name;
  std::vector<double> p_values;
  bool applicable = true;

  /// Passes iff applicable and every p-value >= alpha.
  bool passed(double alpha = 0.01) const {
    if (!applicable || p_values.empty()) return false;
    for (double p : p_values) {
      if (!(p >= alpha)) return false;
    }
    return true;
  }
};

// --- The 15 tests (SP800-22 section numbers in comments) ------------------

TestResult frequency(const BitSequence& s);                    // 2.1
TestResult block_frequency(const BitSequence& s,
                           size_t block_len = 128);            // 2.2
TestResult runs(const BitSequence& s);                         // 2.3
TestResult longest_run_of_ones(const BitSequence& s);          // 2.4
TestResult binary_matrix_rank(const BitSequence& s);           // 2.5
TestResult spectral_dft(const BitSequence& s);                 // 2.6
TestResult non_overlapping_template(
    const BitSequence& s, const std::string& tmpl = "000000001");  // 2.7

/// All aperiodic (unbordered) bit patterns of length m — the template set
/// the STS reference draws from for test 2.7.  m <= 16.
std::vector<std::string> aperiodic_templates(unsigned m);

/// Runs the non-overlapping template test over up to `max_templates`
/// aperiodic templates of length m (evenly sampled from the full set),
/// the way the full STS reports one p-value per template.
std::vector<TestResult> non_overlapping_template_suite(
    const BitSequence& s, unsigned m = 9, size_t max_templates = 16);
TestResult overlapping_template(const BitSequence& s);         // 2.8
TestResult universal(const BitSequence& s);                    // 2.9
TestResult linear_complexity(const BitSequence& s,
                             size_t block_len = 500);          // 2.10
TestResult serial(const BitSequence& s, unsigned m = 0);       // 2.11
TestResult approximate_entropy(const BitSequence& s,
                               unsigned m = 0);                // 2.12
TestResult cumulative_sums(const BitSequence& s);              // 2.13
TestResult random_excursions(const BitSequence& s);            // 2.14
TestResult random_excursions_variant(const BitSequence& s);    // 2.15

/// Runs all 15 tests in Table VI order.
std::vector<TestResult> run_all(const BitSequence& s);

/// Names of the 15 tests in Table VI order.
std::vector<std::string> test_names();

/// Table VI harness: splits `data` into `num_streams` equal bit streams,
/// runs all 15 tests on each, and reports the per-test fraction of
/// streams that pass (ignoring streams where a test is not applicable).
struct PassRateReport {
  std::vector<std::string> names;
  std::vector<double> pass_rate;        ///< in [0,1]; -1 if never applicable
  std::vector<int> applicable_streams;  ///< how many streams each rate uses
  size_t num_streams = 0;
};

PassRateReport pass_rates(BytesView data, size_t num_streams,
                          double alpha = 0.01);

}  // namespace szsec::nist
