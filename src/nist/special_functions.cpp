#include "nist/special_functions.h"

#include <cmath>
#include <limits>

namespace szsec::nist {

namespace {
constexpr double kMaxLog = 709.0;
constexpr double kEps = 1e-15;
constexpr double kBig = 4.503599627370496e15;
constexpr double kBigInv = 2.22044604925031308085e-16;

// Lower incomplete gamma by power series (valid for x < a + 1).
double igam_series(double a, double x) {
  if (x <= 0 || a <= 0) return 0.0;
  const double ax = a * std::log(x) - x - std::lgamma(a);
  if (ax < -kMaxLog) return 0.0;
  const double axe = std::exp(ax);
  double r = a, c = 1.0, ans = 1.0;
  do {
    r += 1.0;
    c *= x / r;
    ans += c;
  } while (c / ans > kEps);
  return ans * axe / a;
}

// Upper incomplete gamma by continued fraction (valid for x >= a + 1).
double igamc_cf(double a, double x) {
  const double ax = a * std::log(x) - x - std::lgamma(a);
  if (ax < -kMaxLog) return 0.0;
  const double axe = std::exp(ax);

  double y = 1.0 - a;
  double z = x + y + 1.0;
  double c = 0.0;
  double pkm2 = 1.0, qkm2 = x;
  double pkm1 = x + 1.0, qkm1 = z * x;
  double ans = pkm1 / qkm1;
  double t;
  do {
    c += 1.0;
    y += 1.0;
    z += 2.0;
    const double yc = y * c;
    const double pk = pkm1 * z - pkm2 * yc;
    const double qk = qkm1 * z - qkm2 * yc;
    if (qk != 0) {
      const double r = pk / qk;
      t = std::abs((ans - r) / r);
      ans = r;
    } else {
      t = 1.0;
    }
    pkm2 = pkm1;
    pkm1 = pk;
    qkm2 = qkm1;
    qkm1 = qk;
    if (std::abs(pk) > kBig) {
      pkm2 *= kBigInv;
      pkm1 *= kBigInv;
      qkm2 *= kBigInv;
      qkm1 *= kBigInv;
    }
  } while (t > kEps);
  return ans * axe;
}

}  // namespace

double igam(double a, double x) {
  if (x <= 0 || a <= 0) return 0.0;
  if (x > 1.0 && x > a) return 1.0 - igamc(a, x);
  return igam_series(a, x);
}

double igamc(double a, double x) {
  if (x <= 0 || a <= 0) return 1.0;
  if (x < 1.0 || x < a) return 1.0 - igam_series(a, x);
  return igamc_cf(a, x);
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace szsec::nist
