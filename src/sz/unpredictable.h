// Unpredictable-value storage via IEEE-754 binary representation analysis
// (Algorithm 1's "Compress the unpredictable array using IEEE 754 binary
// representation analysis").
//
// A value the quantizer cannot represent is stored as sign + raw exponent
// + only as many leading mantissa bits as the error bound requires: a bit
// at mantissa position t (from the LSB) carries weight 2^(e-M+t), so bits
// below the error bound's magnitude are simply dropped.  The decoder
// recomputes the kept-bit count from the exponent and the (globally known)
// error bound, so no per-value length field is needed.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "common/bitstream.h"

namespace szsec::sz {

namespace detail {

/// Mantissa bits to keep for a float32 with biased exponent `biased`
/// under error bound 2^log2_eb_floor.
inline unsigned kept_bits_f32(unsigned biased, int log2_eb_floor) {
  if (biased == 0xFF) return 23;  // inf/nan: store exactly
  const int e = (biased == 0) ? -126 : static_cast<int>(biased) - 127;
  const int drop = log2_eb_floor - e + 23;  // bits safely droppable
  if (drop <= 0) return 23;
  if (drop >= 23) return 0;
  return static_cast<unsigned>(23 - drop);
}

inline unsigned kept_bits_f64(unsigned biased, int log2_eb_floor) {
  if (biased == 0x7FF) return 52;
  const int e = (biased == 0) ? -1022 : static_cast<int>(biased) - 1023;
  const int drop = log2_eb_floor - e + 52;
  if (drop <= 0) return 52;
  if (drop >= 52) return 0;
  return static_cast<unsigned>(52 - drop);
}

}  // namespace detail

/// Streams unpredictable values into a truncated-bit blob.
class UnpredictableEncoder {
 public:
  explicit UnpredictableEncoder(double abs_error_bound)
      : log2_eb_(static_cast<int>(std::floor(std::log2(abs_error_bound)))) {}

  /// Writes `v` and returns the truncated value the decoder will see;
  /// the compressor must store this into its reconstruction array so both
  /// sides keep predicting from identical data.
  float put(float v) {
    const uint32_t bits = std::bit_cast<uint32_t>(v);
    const uint32_t biased = (bits >> 23) & 0xFF;
    const unsigned kept = detail::kept_bits_f32(biased, log2_eb_);
    w_.put_bit(bits >> 31);
    w_.put_bits(biased, 8);
    uint32_t mant = 0;
    if (kept > 0) {
      mant = (bits & 0x7FFFFF) >> (23 - kept);
      w_.put_bits(mant, kept);
      mant <<= (23 - kept);
    }
    return std::bit_cast<float>((bits & 0x80000000u) | (biased << 23) | mant);
  }

  double put(double v) {
    const uint64_t bits = std::bit_cast<uint64_t>(v);
    const uint64_t biased = (bits >> 52) & 0x7FF;
    const unsigned kept =
        detail::kept_bits_f64(static_cast<unsigned>(biased), log2_eb_);
    w_.put_bit(static_cast<unsigned>(bits >> 63));
    w_.put_bits(biased, 11);
    uint64_t mant = 0;
    if (kept > 0) {
      mant = (bits & 0xFFFFFFFFFFFFFull) >> (52 - kept);
      w_.put_bits(mant, kept);
      mant <<= (52 - kept);
    }
    return std::bit_cast<double>((bits & 0x8000000000000000ull) |
                                 (biased << 52) | mant);
  }

  Bytes finish() { return w_.finish(); }

 private:
  int log2_eb_;
  BitWriter w_;
};

/// Decodes values written by UnpredictableEncoder, in order.
class UnpredictableDecoder {
 public:
  UnpredictableDecoder(BytesView blob, double abs_error_bound)
      : log2_eb_(static_cast<int>(std::floor(std::log2(abs_error_bound)))),
        r_(blob) {}

  float next_f32() {
    const uint32_t sign = static_cast<uint32_t>(r_.get_bit());
    const uint32_t biased = static_cast<uint32_t>(r_.get_bits(8));
    const unsigned kept = detail::kept_bits_f32(biased, log2_eb_);
    uint32_t mant = 0;
    if (kept > 0) {
      mant = static_cast<uint32_t>(r_.get_bits(kept)) << (23 - kept);
    }
    return std::bit_cast<float>((sign << 31) | (biased << 23) | mant);
  }

  double next_f64() {
    const uint64_t sign = r_.get_bit();
    const uint64_t biased = r_.get_bits(11);
    const unsigned kept =
        detail::kept_bits_f64(static_cast<unsigned>(biased), log2_eb_);
    uint64_t mant = 0;
    if (kept > 0) mant = r_.get_bits(kept) << (52 - kept);
    return std::bit_cast<double>((sign << 63) | (biased << 52) | mant);
  }

 private:
  int log2_eb_;
  BitReader r_;
};

}  // namespace szsec::sz
