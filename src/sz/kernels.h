// Runtime-dispatched SIMD row kernels for the SZ predict/quantize stage.
//
// These are the element-wise inner loops of the block pipeline — affine
// (regression/mean) row prediction, linear-scale quantization and
// dequantization — vectorized with SSE2/AVX2 and selected per call from
// cpu::enabled_features().  Every kernel is *bit-identical* to the
// scalar expression it replaces: the IEEE-754 operations (convert,
// subtract, divide, round-to-nearest-even, multiply, add) are exactly
// specified per lane, no FMA contraction is used, and the operation
// order matches the scalar code.  Archives produced at any dispatch
// level are therefore byte-for-byte equal (asserted by the golden
// container pins and tests/kernel_dispatch_test.cpp).
//
// Only element-wise stages are vectorized.  The Lorenzo predictor reads
// reconstructed neighbours (a serial recurrence) and the per-block
// predictor selection accumulates doubles in scan order; vectorizing
// either would reassociate floating point and change output bytes, so
// both stay scalar by design — see docs/PERFORMANCE.md.
#pragma once

#include <cstddef>
#include <cstdint>

namespace szsec::sz::kernels {

/// Name of the kernel set the current feature mask selects: "avx2",
/// "sse2" or "scalar".  Used by benches to detect silent fallback.
const char* active_backend();

/// Fills pred[i] = (T)((t_zy + slope_x * (double)i) + intercept) for
/// i in [0, n) — the regression predictor along a row, with the z/y
/// terms pre-folded into t_zy by the caller (exactly as the scalar
/// pipeline associates them).
template <typename T>
void predict_affine_row(double t_zy, double slope_x, double intercept,
                        size_t n, T* pred);

/// Element-wise LinearQuantizer::quantize over a row: for each i sets
/// codes[i] and, when codes[i] != 0, recon[i] to the decoder-visible
/// reconstruction.  Lanes that quantize to 0 (unpredictable) leave
/// recon[i] unspecified — the caller overwrites them from the
/// unpredictable encoder.  `eb` is the absolute error bound; `radius`
/// is LinearQuantizer::radius().
template <typename T>
void quantize_row(const T* values, const T* pred, size_t n, double eb,
                  int64_t radius, uint32_t* codes, T* recon);

/// Element-wise LinearQuantizer::dequantize over a row: `values` holds
/// the predictions on entry and the reconstructions on exit.  Lanes
/// with codes[i] == 0 get an unspecified value — the caller overwrites
/// them from the unpredictable stream.  Callers must validate
/// codes[i] < bins beforehand.
template <typename T>
void dequantize_row(const uint32_t* codes, T* values, size_t n, double eb,
                    int64_t radius);

}  // namespace szsec::sz::kernels
