// Compressibility analysis on top of the pipeline's stage-2 output.
//
// These helpers answer the questions a user asks before committing to an
// error bound: how predictable is my data at bound X, what compression
// ratio should I expect (without paying for Huffman + lossless), and
// which bound achieves a target ratio.  The CR estimate is entropy-based:
// Huffman coding approaches the code histogram's Shannon entropy within
// one bit/symbol, and the unpredictable/tree terms are counted exactly.
#pragma once

#include <span>

#include "sz/pipeline.h"

namespace szsec::sz {

/// Statistics of a quantization-code stream.
struct CodeAnalysis {
  uint64_t element_count = 0;
  uint64_t distinct_codes = 0;      ///< nonzero codes in use
  uint32_t min_code = 0;            ///< smallest nonzero code
  uint32_t max_code = 0;            ///< largest code
  double code_entropy_bits = 0;     ///< Shannon entropy of the code stream
  double predictable_fraction = 0;  ///< 1 - unpredictable share

  /// Estimated compressed size in bytes: entropy-coded codes +
  /// unpredictable blob + a per-distinct-code table charge.
  uint64_t estimated_bytes = 0;
};

/// Analyzes an already-quantized field.
CodeAnalysis analyze_codes(const QuantizedField& q);

/// Runs stages 1+2 and returns the analysis plus an estimated CR.
struct ProfileRow {
  double error_bound = 0;
  CodeAnalysis analysis;
  double estimated_cr = 0;
};

ProfileRow profile(std::span<const float> data, const Dims& dims,
                   const Params& params);

/// Finds (by bisection on log10(eb)) the smallest error bound whose
/// *estimated* compression ratio reaches `target_cr`.  Returns the bound,
/// or `hi` if even the loosest bound falls short.  Cost: ~`iters` full
/// prediction passes.
double suggest_error_bound(std::span<const float> data, const Dims& dims,
                           double target_cr, double lo = 1e-9,
                           double hi = 1e-1, int iters = 12);

}  // namespace szsec::sz
