// Lorenzo predictors (Ibarria et al.) over the reconstructed field.
//
// SZ predicts each point from already-reconstructed neighbours so the
// compressor and decompressor stay bit-identical.  Out-of-range neighbours
// contribute 0 (the standard SZ convention).
#pragma once

#include <cstddef>

namespace szsec::sz {

/// 1D Lorenzo: p(i) = d(i-1).
template <typename T>
struct Lorenzo1D {
  const T* recon;

  T predict(size_t i) const { return i >= 1 ? recon[i - 1] : T{0}; }
};

/// 2D Lorenzo: p(i,j) = d(i-1,j) + d(i,j-1) - d(i-1,j-1).
template <typename T>
struct Lorenzo2D {
  const T* recon;
  size_t ny, nx;  // dims: (ny rows, nx cols), row-major

  T predict(size_t j, size_t i) const {
    const T a = j >= 1 ? recon[(j - 1) * nx + i] : T{0};
    const T b = i >= 1 ? recon[j * nx + (i - 1)] : T{0};
    const T c = (j >= 1 && i >= 1) ? recon[(j - 1) * nx + (i - 1)] : T{0};
    return a + b - c;
  }
};

/// 3D Lorenzo:
/// p = d100 + d010 + d001 - d110 - d101 - d011 + d111 (offsets negated).
template <typename T>
struct Lorenzo3D {
  const T* recon;
  size_t nz, ny, nx;

  T predict(size_t k, size_t j, size_t i) const {
    auto at = [&](size_t kk, size_t jj, size_t ii) -> T {
      return recon[(kk * ny + jj) * nx + ii];
    };
    const bool has_k = k >= 1, has_j = j >= 1, has_i = i >= 1;
    T p{0};
    if (has_k) p += at(k - 1, j, i);
    if (has_j) p += at(k, j - 1, i);
    if (has_i) p += at(k, j, i - 1);
    if (has_k && has_j) p -= at(k - 1, j - 1, i);
    if (has_k && has_i) p -= at(k - 1, j, i - 1);
    if (has_j && has_i) p -= at(k, j - 1, i - 1);
    if (has_k && has_j && has_i) p += at(k - 1, j - 1, i - 1);
    return p;
  }
};

}  // namespace szsec::sz
