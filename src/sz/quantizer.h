// SZ's error-controlled linear-scale quantizer.
//
// The prediction error (value - predicted) is mapped to an integer bin of
// width 2*eb, so reconstructing from the bin index is guaranteed to land
// within eb of the original.  Values whose bin falls outside the code
// range are "unpredictable" (code 0) and stored losslessly-within-bound
// by the unpredictable encoder.
#pragma once

#include <cmath>
#include <cstdint>

#include "sz/params.h"

namespace szsec::sz {

class LinearQuantizer {
 public:
  LinearQuantizer(double abs_error_bound, uint32_t bins)
      : eb_(abs_error_bound),
        two_eb_(2.0 * abs_error_bound),
        bins_(bins),
        radius_(bins / 2) {}

  /// Quantizes `value` against `predicted`.  On success returns a code in
  /// [1, bins-1] and sets `reconstructed` to the decoder-visible value
  /// (|reconstructed - value| <= eb).  Returns 0 (unpredictable) otherwise.
  template <typename T>
  uint32_t quantize(T value, T predicted, T& reconstructed) const {
    const double diff = static_cast<double>(value) - predicted;
    // Round to nearest bin; bins are centred multiples of 2*eb.
    const double scaled = diff / two_eb_;
    const double rounded = std::nearbyint(scaled);
    if (std::abs(rounded) >= static_cast<double>(radius_) ||
        !std::isfinite(diff)) {
      return 0;
    }
    const int64_t q = static_cast<int64_t>(rounded);
    const T recon = static_cast<T>(predicted + rounded * two_eb_);
    // Guard against floating-point rounding pushing the reconstruction out
    // of bound (can happen when |predicted| >> |value|).
    if (std::abs(static_cast<double>(recon) - value) > eb_) return 0;
    reconstructed = recon;
    return static_cast<uint32_t>(q + radius_);
  }

  /// Inverse mapping for a predictable code (1..bins-1).
  template <typename T>
  T dequantize(uint32_t code, T predicted) const {
    const int64_t q = static_cast<int64_t>(code) - radius_;
    return static_cast<T>(static_cast<double>(predicted) +
                          static_cast<double>(q) * two_eb_);
  }

  double error_bound() const { return eb_; }
  uint32_t bins() const { return bins_; }
  uint32_t radius() const { return radius_; }

 private:
  double eb_;
  double two_eb_;
  uint32_t bins_;
  int64_t radius_;
};

}  // namespace szsec::sz
