// Per-block linear regression predictor (the SZ-2 hybrid candidate the
// paper's Section II-A describes) and the quantized-coefficient codec
// (Algorithm 1's "Compress regression coefficients").
//
// A block's field is approximated as f(z,y,x) = az*z + ay*y + ax*x + b via
// closed-form least squares on the regular block grid.  Coefficients are
// quantized so compressor and decompressor predict identically; slope
// precision eb/side and intercept precision eb keep the coefficient error
// a small fraction of the bound (correctness never depends on it — the
// quantizer re-checks every point).
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/bytestream.h"

namespace szsec::sz {

/// Up to 3 slopes + intercept; unused slopes are 0 for lower ranks.
struct RegressionCoeffs {
  double slope[3] = {0, 0, 0};  // z, y, x order (slowest first)
  double intercept = 0;
};

/// Least-squares fit over a block of extents (bz, by, bx) stored row-major
/// with the given strides into `data`.  Works for rank 1..3 by setting the
/// leading extents to 1.
template <typename T>
RegressionCoeffs fit_block(const T* data, size_t bz, size_t by, size_t bx,
                           size_t sz, size_t sy, size_t sx) {
  // For a regular grid the normal equations decouple: the slope along each
  // axis is cov(axis, value)/var(axis) and the intercept re-centres.
  const double n = static_cast<double>(bz * by * bx);
  double sum = 0;
  double sum_z = 0, sum_y = 0, sum_x = 0;
  for (size_t z = 0; z < bz; ++z) {
    for (size_t y = 0; y < by; ++y) {
      for (size_t x = 0; x < bx; ++x) {
        const double v = data[z * sz + y * sy + x * sx];
        sum += v;
        sum_z += v * static_cast<double>(z);
        sum_y += v * static_cast<double>(y);
        sum_x += v * static_cast<double>(x);
      }
    }
  }
  RegressionCoeffs c;
  const double mean_v = sum / n;
  auto slope_of = [&](double sv, size_t extent) {
    if (extent <= 1) return 0.0;
    const double e = static_cast<double>(extent);
    const double mean_c = (e - 1.0) / 2.0;
    const double var = (e * e - 1.0) / 12.0;
    const double cov = sv / n - mean_c * mean_v;
    return cov / var;
  };
  c.slope[0] = slope_of(sum_z, bz);
  c.slope[1] = slope_of(sum_y, by);
  c.slope[2] = slope_of(sum_x, bx);
  c.intercept = mean_v -
                c.slope[0] * (static_cast<double>(bz) - 1) / 2.0 -
                c.slope[1] * (static_cast<double>(by) - 1) / 2.0 -
                c.slope[2] * (static_cast<double>(bx) - 1) / 2.0;
  return c;
}

/// Quantizes/serializes coefficients so both sides predict identically.
class CoeffCodec {
 public:
  CoeffCodec(double abs_error_bound, uint32_t block_side)
      : slope_step_(abs_error_bound / (2.0 * block_side)),
        intercept_step_(abs_error_bound / 2.0) {}

  /// Quantizes in place (coefficients become exact step multiples) and
  /// appends the zigzag-varint representation to `w`.
  void encode(RegressionCoeffs& c, ByteWriter& w) const {
    for (double& s : c.slope) s = quantize(s, slope_step_, w);
    c.intercept = quantize(c.intercept, intercept_step_, w);
  }

  RegressionCoeffs decode(ByteReader& r) const {
    RegressionCoeffs c;
    for (double& s : c.slope) s = unzig(r) * slope_step_;
    c.intercept = unzig(r) * intercept_step_;
    return c;
  }

  /// Quantizes/encodes a scalar block mean (for the mean predictor).
  double encode_mean(double mean, ByteWriter& w) const {
    return quantize(mean, intercept_step_, w);
  }

  double decode_mean(ByteReader& r) const {
    return unzig(r) * intercept_step_;
  }

 private:
  static uint64_t zigzag(int64_t v) {
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
  }
  static double unzig(ByteReader& r) {
    const uint64_t u = r.get_varint();
    const int64_t v =
        static_cast<int64_t>(u >> 1) ^ -static_cast<int64_t>(u & 1);
    return static_cast<double>(v);
  }

  double quantize(double v, double step, ByteWriter& w) const {
    double q = std::nearbyint(v / step);
    // Clamp pathological values (inf/nan from degenerate fits) to 0.
    if (!std::isfinite(q) || std::abs(q) > 9.0e18) q = 0;
    const int64_t qi = static_cast<int64_t>(q);
    w.put_varint(zigzag(qi));
    return static_cast<double>(qi) * step;
  }

  double slope_step_;
  double intercept_step_;
};

}  // namespace szsec::sz
