#include "sz/pipeline.h"

#include <algorithm>

#include "common/error.h"
#include "sz/interpolation.h"
#include "sz/kernels.h"
#include "sz/predictor.h"
#include "sz/quantizer.h"
#include "sz/regression.h"
#include "sz/unpredictable.h"

namespace szsec::sz {

namespace {

// Dims of any rank are normalized to (nt, nz, ny, nx): 4D fields iterate
// their slowest dimension as independent 3D volumes (SZ's convention for
// the SCALE-LetKF snapshot dims), and 1D/2D embed with leading extents 1.
struct Shape {
  size_t nt, nz, ny, nx;
};

Shape normalize(const Dims& dims) {
  switch (dims.rank()) {
    case 1:
      return {1, 1, 1, dims[0]};
    case 2:
      return {1, 1, dims[0], dims[1]};
    case 3:
      return {1, dims[0], dims[1], dims[2]};
    default:
      return {dims[0], dims[1], dims[2], dims[3]};
  }
}

struct BlockShape {
  size_t bz, by, bx;
};

// Prediction block shape by effective rank: cubes for 3D, squares for 2D,
// long segments for 1D so the per-block side info stays a small fraction.
BlockShape block_shape(const Shape& s, const Params& p) {
  const size_t b = std::max<uint32_t>(2, p.block_side);
  if (s.nz == 1 && s.ny == 1) return {1, 1, b * b * b};
  if (s.nz == 1) return {1, 2 * b, 2 * b};
  return {b, b, b};
}

// Per-block predictor choice: estimates each candidate's absolute error on
// a sample of the block (x-stride 2) and picks the minimum.  The Lorenzo
// estimate uses original-data neighbours — the standard SZ approximation,
// since reconstructed values don't exist before the block is committed.
template <typename T>
PredictorMode choose_mode(const T* data, size_t nz, size_t ny, size_t nx,
                          size_t z0, size_t y0, size_t x0, size_t bz,
                          size_t by, size_t bx, const Params& params,
                          const RegressionCoeffs& reg, double mean) {
  const Lorenzo3D<T> lorenzo{data, nz, ny, nx};
  double err_l = 0, err_r = 0, err_m = 0;
  for (size_t z = 0; z < bz; ++z) {
    for (size_t y = 0; y < by; ++y) {
      for (size_t x = 0; x < bx; x += 2) {
        const size_t gz = z0 + z, gy = y0 + y, gx = x0 + x;
        const double v = data[(gz * ny + gy) * nx + gx];
        err_l += std::abs(v - static_cast<double>(lorenzo.predict(gz, gy, gx)));
        if (params.use_regression) {
          const double pr = reg.slope[0] * static_cast<double>(z) +
                            reg.slope[1] * static_cast<double>(y) +
                            reg.slope[2] * static_cast<double>(x) +
                            reg.intercept;
          err_r += std::abs(v - pr);
        }
        if (params.use_mean_predictor) err_m += std::abs(v - mean);
      }
    }
  }
  PredictorMode mode = PredictorMode::kLorenzo;
  double best = err_l;
  if (params.use_mean_predictor && err_m < best) {
    best = err_m;
    mode = PredictorMode::kMean;
  }
  if (params.use_regression && err_r < best) {
    mode = PredictorMode::kRegression;
  }
  return mode;
}

template <typename T>
void encode_volume(const T* data, T* recon, size_t nz, size_t ny, size_t nx,
                   const Params& params, const LinearQuantizer& quant,
                   const CoeffCodec& codec, UnpredictableEncoder& unpred,
                   ByteWriter& side, std::vector<uint32_t>& codes,
                   uint64_t& unpred_count, const BlockShape& bs) {
  const Lorenzo3D<T> lorenzo{recon, nz, ny, nx};
  std::vector<T> pred_row(bs.bx);
  const auto radius = static_cast<int64_t>(quant.radius());
  for (size_t z0 = 0; z0 < nz; z0 += bs.bz) {
    const size_t bz = std::min(bs.bz, nz - z0);
    for (size_t y0 = 0; y0 < ny; y0 += bs.by) {
      const size_t by = std::min(bs.by, ny - y0);
      for (size_t x0 = 0; x0 < nx; x0 += bs.bx) {
        const size_t bx = std::min(bs.bx, nx - x0);
        const T* block0 = data + (z0 * ny + y0) * nx + x0;

        RegressionCoeffs reg;
        double mean = 0;
        if (params.use_regression || params.use_mean_predictor) {
          reg = fit_block(block0, bz, by, bx, ny * nx, nx, 1);
          // The regression intercept at the block centre is the mean.
          mean = reg.intercept +
                 reg.slope[0] * (static_cast<double>(bz) - 1) / 2 +
                 reg.slope[1] * (static_cast<double>(by) - 1) / 2 +
                 reg.slope[2] * (static_cast<double>(bx) - 1) / 2;
        }
        const PredictorMode mode =
            choose_mode(data, nz, ny, nx, z0, y0, x0, bz, by, bx, params,
                        reg, mean);

        side.put_u8(static_cast<uint8_t>(mode));
        double qmean = 0;
        if (mode == PredictorMode::kRegression) {
          codec.encode(reg, side);  // quantizes in place
        } else if (mode == PredictorMode::kMean) {
          qmean = codec.encode_mean(mean, side);
        }

        if (mode == PredictorMode::kLorenzo) {
          // Lorenzo reads reconstructed neighbours — a serial recurrence
          // that cannot be vectorized without changing output bytes.
          for (size_t z = 0; z < bz; ++z) {
            for (size_t y = 0; y < by; ++y) {
              for (size_t x = 0; x < bx; ++x) {
                const size_t gz = z0 + z, gy = y0 + y, gx = x0 + x;
                const size_t idx = (gz * ny + gy) * nx + gx;
                const T v = data[idx];
                const T pred = lorenzo.predict(gz, gy, gx);
                T rv = pred;
                const uint32_t code = quant.quantize(v, pred, rv);
                codes.push_back(code);
                if (code == 0) {
                  rv = unpred.put(v);
                  ++unpred_count;
                }
                recon[idx] = rv;
              }
            }
          }
        } else {
          // Regression/mean predictions are element-wise: predict and
          // quantize whole rows through the SIMD kernels, then patch the
          // unpredictable lanes in scan order.
          for (size_t z = 0; z < bz; ++z) {
            for (size_t y = 0; y < by; ++y) {
              const size_t row0 = ((z0 + z) * ny + (y0 + y)) * nx + x0;
              if (mode == PredictorMode::kRegression) {
                const double t_zy = reg.slope[0] * static_cast<double>(z) +
                                    reg.slope[1] * static_cast<double>(y);
                kernels::predict_affine_row(t_zy, reg.slope[2],
                                            reg.intercept, bx,
                                            pred_row.data());
              } else {
                std::fill_n(pred_row.data(), bx, static_cast<T>(qmean));
              }
              const size_t code_base = codes.size();
              codes.resize(code_base + bx);
              kernels::quantize_row(data + row0, pred_row.data(), bx,
                                    quant.error_bound(), radius,
                                    codes.data() + code_base, recon + row0);
              for (size_t x = 0; x < bx; ++x) {
                if (codes[code_base + x] == 0) {
                  recon[row0 + x] = unpred.put(data[row0 + x]);
                  ++unpred_count;
                }
              }
            }
          }
        }
      }
    }
  }
}

template <typename T>
void decode_volume(T* out, size_t nz, size_t ny, size_t nx,
                   const Params& params, const LinearQuantizer& quant,
                   const CoeffCodec& codec, UnpredictableDecoder& unpred,
                   ByteReader& side, const uint32_t*& code_it,
                   const BlockShape& bs) {
  const Lorenzo3D<T> lorenzo{out, nz, ny, nx};
  const auto radius = static_cast<int64_t>(quant.radius());
  for (size_t z0 = 0; z0 < nz; z0 += bs.bz) {
    const size_t bz = std::min(bs.bz, nz - z0);
    for (size_t y0 = 0; y0 < ny; y0 += bs.by) {
      const size_t by = std::min(bs.by, ny - y0);
      for (size_t x0 = 0; x0 < nx; x0 += bs.bx) {
        const size_t bx = std::min(bs.bx, nx - x0);

        const auto mode = static_cast<PredictorMode>(side.get_u8());
        SZSEC_CHECK_FORMAT(
            mode == PredictorMode::kLorenzo || mode == PredictorMode::kMean ||
                mode == PredictorMode::kRegression,
            "bad predictor mode");
        RegressionCoeffs reg;
        double qmean = 0;
        if (mode == PredictorMode::kRegression) {
          reg = codec.decode(side);
        } else if (mode == PredictorMode::kMean) {
          qmean = codec.decode_mean(side);
        }

        if (mode == PredictorMode::kLorenzo) {
          for (size_t z = 0; z < bz; ++z) {
            for (size_t y = 0; y < by; ++y) {
              for (size_t x = 0; x < bx; ++x) {
                const size_t gz = z0 + z, gy = y0 + y, gx = x0 + x;
                const size_t idx = (gz * ny + gy) * nx + gx;
                const T pred = lorenzo.predict(gz, gy, gx);
                const uint32_t code = *code_it++;
                if (code == 0) {
                  if constexpr (std::is_same_v<T, float>) {
                    out[idx] = unpred.next_f32();
                  } else {
                    out[idx] = unpred.next_f64();
                  }
                } else {
                  SZSEC_CHECK_FORMAT(code < quant.bins(),
                                     "quantization code out of range");
                  out[idx] = quant.dequantize(code, pred);
                }
              }
            }
          }
        } else {
          // Row-kernel path mirroring encode_volume: predict the row in
          // place, dequantize every non-zero lane, then patch zeros from
          // the unpredictable stream in scan order.
          for (size_t z = 0; z < bz; ++z) {
            for (size_t y = 0; y < by; ++y) {
              const size_t row0 = ((z0 + z) * ny + (y0 + y)) * nx + x0;
              T* row = out + row0;
              if (mode == PredictorMode::kRegression) {
                const double t_zy = reg.slope[0] * static_cast<double>(z) +
                                    reg.slope[1] * static_cast<double>(y);
                kernels::predict_affine_row(t_zy, reg.slope[2],
                                            reg.intercept, bx, row);
              } else {
                std::fill_n(row, bx, static_cast<T>(qmean));
              }
              for (size_t x = 0; x < bx; ++x) {
                SZSEC_CHECK_FORMAT(code_it[x] == 0 || code_it[x] < quant.bins(),
                                   "quantization code out of range");
              }
              kernels::dequantize_row(code_it, row, bx, quant.error_bound(),
                                      radius);
              for (size_t x = 0; x < bx; ++x) {
                if (code_it[x] == 0) {
                  if constexpr (std::is_same_v<T, float>) {
                    row[x] = unpred.next_f32();
                  } else {
                    row[x] = unpred.next_f64();
                  }
                }
              }
              code_it += bx;
            }
          }
        }
      }
    }
  }
}

template <typename T>
QuantizedField predict_quantize_impl(std::span<const T> data,
                                     const Dims& dims, const Params& raw,
                                     StageTimes* times) {
  SZSEC_REQUIRE(data.size() == dims.count(),
                "data size does not match dims");
  SZSEC_REQUIRE(raw.quant_bins >= 4 && raw.quant_bins % 2 == 0,
                "quant_bins must be even and >= 4");
  ScopedStageTimer timer(times, "predict+quantize");

  // Resolve a REL bound to an absolute one against the data's range; the
  // resolved Params travel in the container so the decoder is mode-free.
  Params params = raw;
  if (raw.eb_mode == ErrorBoundMode::kRel) {
    SZSEC_REQUIRE(raw.rel_error_bound > 0,
                  "relative error bound must be positive");
    T lo = data.empty() ? T{0} : data[0];
    T hi = lo;
    for (T v : data) {
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
    const double range = static_cast<double>(hi) - static_cast<double>(lo);
    params.abs_error_bound =
        std::max(range * raw.rel_error_bound, 1e-30);
    params.eb_mode = ErrorBoundMode::kAbs;
  }
  SZSEC_REQUIRE(params.abs_error_bound > 0, "error bound must be positive");

  QuantizedField q;
  q.params = params;
  q.dims = dims;
  q.dtype = std::is_same_v<T, float> ? DType::kFloat32 : DType::kFloat64;
  q.codes.reserve(data.size());

  const Shape s = normalize(dims);
  const BlockShape bs = block_shape(s, params);
  const LinearQuantizer quant(params.abs_error_bound, params.quant_bins);
  const CoeffCodec codec(params.abs_error_bound, params.block_side);
  UnpredictableEncoder unpred(params.abs_error_bound);
  ByteWriter side;

  std::vector<T> recon(s.nz * s.ny * s.nx);
  const size_t vol = s.nz * s.ny * s.nx;
  for (size_t t = 0; t < s.nt; ++t) {
    if (params.predictor == Predictor::kInterpolation) {
      interp_encode_volume(data.data() + t * vol, recon.data(), s.nz, s.ny,
                           s.nx, quant, unpred, q.codes,
                           q.unpredictable_count);
    } else {
      encode_volume(data.data() + t * vol, recon.data(), s.nz, s.ny, s.nx,
                    params, quant, codec, unpred, side, q.codes,
                    q.unpredictable_count, bs);
    }
  }
  q.unpredictable = unpred.finish();
  q.side_info = side.take();
  return q;
}

template <typename T>
void reconstruct_impl(const Params& params, const Dims& dims,
                      std::span<const uint32_t> codes, BytesView unpredictable,
                      BytesView side_info, std::span<T> out,
                      StageTimes* times) {
  SZSEC_REQUIRE(out.size() == dims.count(), "output size mismatch");
  SZSEC_CHECK_FORMAT(codes.size() == dims.count(),
                     "code count does not match dims");
  ScopedStageTimer timer(times, "reconstruct");

  const Shape s = normalize(dims);
  const BlockShape bs = block_shape(s, params);
  const LinearQuantizer quant(params.abs_error_bound, params.quant_bins);
  const CoeffCodec codec(params.abs_error_bound, params.block_side);
  UnpredictableDecoder unpred(unpredictable, params.abs_error_bound);
  ByteReader side(side_info);

  const uint32_t* code_it = codes.data();
  const size_t vol = s.nz * s.ny * s.nx;
  for (size_t t = 0; t < s.nt; ++t) {
    if (params.predictor == Predictor::kInterpolation) {
      interp_decode_volume(out.data() + t * vol, s.nz, s.ny, s.nx, quant,
                           unpred, code_it);
    } else {
      decode_volume(out.data() + t * vol, s.nz, s.ny, s.nx, params, quant,
                    codec, unpred, side, code_it, bs);
    }
  }
}

}  // namespace

QuantizedField predict_quantize(std::span<const float> data, const Dims& dims,
                                const Params& params, StageTimes* times) {
  return predict_quantize_impl(data, dims, params, times);
}

QuantizedField predict_quantize(std::span<const double> data,
                                const Dims& dims, const Params& params,
                                StageTimes* times) {
  return predict_quantize_impl(data, dims, params, times);
}

std::vector<uint64_t> block_scan_order(const Dims& dims,
                                       const Params& params) {
  SZSEC_REQUIRE(params.predictor == Predictor::kBlockHybrid,
                "block_scan_order applies to the block predictor only");
  const Shape s = normalize(dims);
  const BlockShape bs = block_shape(s, params);
  std::vector<uint64_t> order;
  order.reserve(dims.count());
  const size_t vol = s.nz * s.ny * s.nx;
  for (size_t t = 0; t < s.nt; ++t) {
    for (size_t z0 = 0; z0 < s.nz; z0 += bs.bz) {
      const size_t bz = std::min(bs.bz, s.nz - z0);
      for (size_t y0 = 0; y0 < s.ny; y0 += bs.by) {
        const size_t by = std::min(bs.by, s.ny - y0);
        for (size_t x0 = 0; x0 < s.nx; x0 += bs.bx) {
          const size_t bx = std::min(bs.bx, s.nx - x0);
          for (size_t z = 0; z < bz; ++z) {
            for (size_t y = 0; y < by; ++y) {
              for (size_t x = 0; x < bx; ++x) {
                order.push_back(t * vol +
                                ((z0 + z) * s.ny + (y0 + y)) * s.nx +
                                (x0 + x));
              }
            }
          }
        }
      }
    }
  }
  return order;
}

EncodedQuant huffman_encode_codes(const QuantizedField& q,
                                  StageTimes* times) {
  ScopedStageTimer timer(times, "huffman");
  EncodedQuant e;
  e.symbol_count = q.codes.size();
  if (q.codes.empty()) return e;
  uint32_t max_code = 0;
  for (uint32_t c : q.codes) max_code = std::max(max_code, c);
  std::vector<uint64_t> freq(static_cast<size_t>(max_code) + 1, 0);
  for (uint32_t c : q.codes) ++freq[c];
  const huffman::CodeTable table = huffman::build_code_table(freq);
  e.tree = huffman::serialize_table(table);
  e.codewords = huffman::encode(table, q.codes);
  return e;
}

std::vector<uint32_t> huffman_decode_codes(BytesView tree, BytesView codewords,
                                           uint64_t count,
                                           StageTimes* times) {
  ScopedStageTimer timer(times, "huffman");
  if (count == 0) return {};
  const huffman::CodeTable table = huffman::deserialize_table(tree);
  return huffman::decode(table, codewords, static_cast<size_t>(count));
}

void reconstruct(const Params& params, const Dims& dims,
                 std::span<const uint32_t> codes, BytesView unpredictable,
                 BytesView side_info, std::span<float> out,
                 StageTimes* times) {
  reconstruct_impl(params, dims, codes, unpredictable, side_info, out, times);
}

void reconstruct(const Params& params, const Dims& dims,
                 std::span<const uint32_t> codes, BytesView unpredictable,
                 BytesView side_info, std::span<double> out,
                 StageTimes* times) {
  reconstruct_impl(params, dims, codes, unpredictable, side_info, out, times);
}

}  // namespace szsec::sz
