// AVX2 SZ row kernels: four double lanes per iteration (compiled with
// -mavx2 only — no -mfma, so mul/add round separately, exactly like the
// scalar expressions these kernels must match bit-for-bit).
//
// Dispatch safety: kernels.cpp only calls into this TU when
// cpu::enabled_features() reports AVX2, which requires both cpuid and
// OS ymm state (xgetbv).

#include "sz/kernels.h"

#ifdef SZSEC_HAVE_AVX2

#include <immintrin.h>

#include <cmath>
#include <limits>

namespace szsec::sz::kernels::avx2 {

namespace {

inline __m256d abs_pd(__m256d v) {
  return _mm256_and_pd(
      v, _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL)));
}

// nearbyint(): round under the current MXCSR mode, no exceptions.
inline __m256d round_pd(__m256d v) {
  return _mm256_round_pd(v, _MM_FROUND_CUR_DIRECTION | _MM_FROUND_NO_EXC);
}

// Narrows a 4-lane double mask (all-ones / all-zeros per 64-bit lane)
// to a 4-lane int32 mask.
inline __m128i mask_pd_to_epi32(__m256d mask) {
  const __m256i mi = _mm256_castpd_si256(mask);
  const __m128 lo = _mm_castsi128_ps(_mm256_castsi256_si128(mi));
  const __m128 hi = _mm_castsi128_ps(_mm256_extracti128_si256(mi, 1));
  return _mm_castps_si128(_mm_shuffle_ps(lo, hi, _MM_SHUFFLE(2, 0, 2, 0)));
}

// First half of the 4-lane quantize body: rounding plus the
// range/finiteness guard.  The reconstruction-error guard is
// type-specific (the scalar code narrows to T *before* comparing), so
// it lives in the callers.
inline void quantize4_pre(__m256d v, __m256d p, __m256d vtwo_eb,
                          __m256d vradius, __m256d vinf, __m256d& rounded,
                          __m256d& rec, __m256d& ok) {
  const __m256d diff = _mm256_sub_pd(v, p);
  const __m256d scaled = _mm256_div_pd(diff, vtwo_eb);
  rounded = round_pd(scaled);
  ok = _mm256_and_pd(
      _mm256_cmp_pd(abs_pd(diff), vinf, _CMP_LT_OQ),
      _mm256_cmp_pd(abs_pd(rounded), vradius, _CMP_LT_OQ));
  rec = _mm256_add_pd(p, _mm256_mul_pd(rounded, vtwo_eb));
}

// Second guard + code extraction.  `rec_t` is the reconstruction after
// any narrowing to T, widened back to double — what the scalar code
// compares.  Scalar form is `if (|rec - v| > eb) fail`, which *passes*
// on an unordered compare — mirror that with andnot(GT) rather than LE.
inline void quantize4_finish(__m256d v, __m256d rec_t, __m256d veb,
                             __m256d rounded, __m128i vradius32, __m256d ok,
                             __m128i& code, __m128i& m32) {
  ok = _mm256_andnot_pd(
      _mm256_cmp_pd(abs_pd(_mm256_sub_pd(rec_t, v)), veb, _CMP_GT_OQ), ok);
  m32 = mask_pd_to_epi32(ok);
  code = _mm_and_si128(
      _mm_add_epi32(_mm256_cvtpd_epi32(rounded), vradius32), m32);
}

}  // namespace

void predict_affine_row_f64(double t_zy, double slope_x, double intercept,
                            size_t n, double* pred) {
  const __m256d vt = _mm256_set1_pd(t_zy);
  const __m256d vs = _mm256_set1_pd(slope_x);
  const __m256d vb = _mm256_set1_pd(intercept);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xd = _mm256_set_pd(
        static_cast<double>(i + 3), static_cast<double>(i + 2),
        static_cast<double>(i + 1), static_cast<double>(i));
    _mm256_storeu_pd(
        pred + i,
        _mm256_add_pd(_mm256_add_pd(vt, _mm256_mul_pd(vs, xd)), vb));
  }
  for (; i < n; ++i) {
    pred[i] = (t_zy + slope_x * static_cast<double>(i)) + intercept;
  }
}

void predict_affine_row_f32(double t_zy, double slope_x, double intercept,
                            size_t n, float* pred) {
  const __m256d vt = _mm256_set1_pd(t_zy);
  const __m256d vs = _mm256_set1_pd(slope_x);
  const __m256d vb = _mm256_set1_pd(intercept);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xd = _mm256_set_pd(
        static_cast<double>(i + 3), static_cast<double>(i + 2),
        static_cast<double>(i + 1), static_cast<double>(i));
    const __m256d p =
        _mm256_add_pd(_mm256_add_pd(vt, _mm256_mul_pd(vs, xd)), vb);
    _mm_storeu_ps(pred + i, _mm256_cvtpd_ps(p));
  }
  for (; i < n; ++i) {
    pred[i] = static_cast<float>(
        (t_zy + slope_x * static_cast<double>(i)) + intercept);
  }
}

void quantize_row_f64(const double* values, const double* pred, size_t n,
                      double eb, int64_t radius, uint32_t* codes,
                      double* recon) {
  const __m256d veb = _mm256_set1_pd(eb);
  const __m256d vtwo_eb = _mm256_set1_pd(2.0 * eb);
  const __m256d vradius = _mm256_set1_pd(static_cast<double>(radius));
  const __m256d vinf =
      _mm256_set1_pd(std::numeric_limits<double>::infinity());
  const __m128i vradius32 = _mm_set1_epi32(static_cast<int32_t>(radius));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    __m256d rounded, rec, ok;
    quantize4_pre(v, _mm256_loadu_pd(pred + i), vtwo_eb, vradius, vinf,
                  rounded, rec, ok);
    __m128i code, m32;
    quantize4_finish(v, rec, veb, rounded, vradius32, ok, code, m32);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(codes + i), code);
    // Write reconstructions only where the guards passed (the scalar
    // code leaves failed lanes untouched).
    _mm256_maskstore_pd(recon + i, _mm256_cvtepi32_epi64(m32), rec);
  }
  // Scalar tail: the reference body verbatim.
  const double two_eb = 2.0 * eb;
  for (; i < n; ++i) {
    const double diff = values[i] - pred[i];
    const double scaled = diff / two_eb;
    const double rounded = std::nearbyint(scaled);
    if (std::abs(rounded) >= static_cast<double>(radius) ||
        !std::isfinite(diff)) {
      codes[i] = 0;
      continue;
    }
    const double rec = pred[i] + rounded * two_eb;
    if (std::abs(rec - values[i]) > eb) {
      codes[i] = 0;
      continue;
    }
    recon[i] = rec;
    codes[i] = static_cast<uint32_t>(static_cast<int64_t>(rounded) + radius);
  }
}

void quantize_row_f32(const float* values, const float* pred, size_t n,
                      double eb, int64_t radius, uint32_t* codes,
                      float* recon) {
  const __m256d veb = _mm256_set1_pd(eb);
  const __m256d vtwo_eb = _mm256_set1_pd(2.0 * eb);
  const __m256d vradius = _mm256_set1_pd(static_cast<double>(radius));
  const __m256d vinf =
      _mm256_set1_pd(std::numeric_limits<double>::infinity());
  const __m128i vradius32 = _mm_set1_epi32(static_cast<int32_t>(radius));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(values + i));
    const __m256d p = _mm256_cvtps_pd(_mm_loadu_ps(pred + i));
    __m256d rounded, rec, ok;
    quantize4_pre(v, p, vtwo_eb, vradius, vinf, rounded, rec, ok);
    // Narrow to float first — the scalar code casts to T and compares
    // the narrowed value against the bound.
    const __m128 rec_ps = _mm256_cvtpd_ps(rec);
    __m128i code, m32;
    quantize4_finish(v, _mm256_cvtps_pd(rec_ps), veb, rounded, vradius32, ok,
                     code, m32);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(codes + i), code);
    _mm_maskstore_ps(recon + i, m32, rec_ps);
  }
  const double two_eb = 2.0 * eb;
  for (; i < n; ++i) {
    const double diff = static_cast<double>(values[i]) - pred[i];
    const double scaled = diff / two_eb;
    const double rounded = std::nearbyint(scaled);
    if (std::abs(rounded) >= static_cast<double>(radius) ||
        !std::isfinite(diff)) {
      codes[i] = 0;
      continue;
    }
    const auto rec = static_cast<float>(pred[i] + rounded * two_eb);
    if (std::abs(static_cast<double>(rec) - values[i]) > eb) {
      codes[i] = 0;
      continue;
    }
    recon[i] = rec;
    codes[i] = static_cast<uint32_t>(static_cast<int64_t>(rounded) + radius);
  }
}

void dequantize_row_f64(const uint32_t* codes, double* values, size_t n,
                        double eb, int64_t radius) {
  const __m256d vtwo_eb = _mm256_set1_pd(2.0 * eb);
  const __m128i vradius = _mm_set1_epi32(static_cast<int32_t>(radius));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i c = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(codes + i));
    const __m256d q = _mm256_cvtepi32_pd(_mm_sub_epi32(c, vradius));
    _mm256_storeu_pd(values + i,
                     _mm256_add_pd(_mm256_loadu_pd(values + i),
                                   _mm256_mul_pd(q, vtwo_eb)));
  }
  const double two_eb = 2.0 * eb;
  for (; i < n; ++i) {
    const int64_t q = static_cast<int64_t>(codes[i]) - radius;
    values[i] = values[i] + static_cast<double>(q) * two_eb;
  }
}

void dequantize_row_f32(const uint32_t* codes, float* values, size_t n,
                        double eb, int64_t radius) {
  const __m256d vtwo_eb = _mm256_set1_pd(2.0 * eb);
  const __m128i vradius = _mm_set1_epi32(static_cast<int32_t>(radius));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i c = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(codes + i));
    const __m256d q = _mm256_cvtepi32_pd(_mm_sub_epi32(c, vradius));
    const __m256d p = _mm256_cvtps_pd(_mm_loadu_ps(values + i));
    _mm_storeu_ps(values + i,
                  _mm256_cvtpd_ps(_mm256_add_pd(p, _mm256_mul_pd(q, vtwo_eb))));
  }
  const double two_eb = 2.0 * eb;
  for (; i < n; ++i) {
    const int64_t q = static_cast<int64_t>(codes[i]) - radius;
    values[i] = static_cast<float>(static_cast<double>(values[i]) +
                                   static_cast<double>(q) * two_eb);
  }
}

}  // namespace szsec::sz::kernels::avx2

#endif  // SZSEC_HAVE_AVX2
