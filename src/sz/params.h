// Compression parameters for the SZ-1.4-style pipeline.
#pragma once

#include <cstdint>

#include "zlite/zlite.h"

namespace szsec::sz {

/// Element type of the field being compressed.
enum class DType : uint8_t {
  kFloat32 = 0,
  kFloat64 = 1,
};

inline size_t dtype_size(DType t) { return t == DType::kFloat32 ? 4 : 8; }

/// Per-block predictor, selected by sampling (paper Section II-A).
enum class PredictorMode : uint8_t {
  kLorenzo = 0,     ///< classic Lorenzo (reconstructed-neighbour stencil)
  kMean = 1,        ///< mean-integrated Lorenzo's dense-mean constant
  kRegression = 2,  ///< per-block linear regression
};

/// How the error bound is interpreted (SZ's ABS and REL modes; the paper
/// evaluates ABS only).
enum class ErrorBoundMode : uint8_t {
  kAbs = 0,  ///< abs_error_bound is the bound directly
  kRel = 1,  ///< bound = rel_error_bound * (max(data) - min(data))
};

/// Which prediction design drives stages 1+2.
enum class Predictor : uint8_t {
  /// SZ-1.4/SZ-2 style: per-block best of Lorenzo / mean / regression
  /// (the paper's configuration).
  kBlockHybrid = 0,
  /// SZ3-style multi-level cubic interpolation (see sz/interpolation.h).
  kInterpolation = 1,
};

/// Tunables of the lossy pipeline.  Defaults mirror SZ's absolute-error
/// mode configuration used in the paper.
struct Params {
  /// Absolute error bound: every reconstructed value differs from the
  /// original by at most this much.  (Ignored when eb_mode == kRel.)
  double abs_error_bound = 1e-4;

  /// Value-range-relative bound, resolved to an absolute bound against
  /// the data's range at compression time when eb_mode == kRel.
  double rel_error_bound = 1e-3;
  ErrorBoundMode eb_mode = ErrorBoundMode::kAbs;

  /// Number of linear-scale quantization bins (even).  Bin 0 is reserved
  /// as the "unpredictable" marker; predictable codes are centred at
  /// quant_bins/2.  SZ's default radius of 32768 corresponds to 65536.
  uint32_t quant_bins = 65536;

  /// Side length of prediction blocks (3D).  2D uses 2x this, 1D 4x.
  uint32_t block_side = 6;

  /// Prediction design (kBlockHybrid reproduces the paper).
  Predictor predictor = Predictor::kBlockHybrid;

  /// Enable the per-block linear-regression candidate.
  bool use_regression = true;

  /// Enable the mean-integrated (dense-mean) candidate.
  bool use_mean_predictor = true;

  /// Effort level of the stage-4 lossless pass.
  zlite::Level lossless_level = zlite::Level::kDefault;
};

}  // namespace szsec::sz
