#include "sz/analysis.h"

#include <cmath>
#include <unordered_map>

namespace szsec::sz {

CodeAnalysis analyze_codes(const QuantizedField& q) {
  CodeAnalysis a;
  a.element_count = q.codes.size();
  if (q.codes.empty()) return a;

  std::unordered_map<uint32_t, uint64_t> hist;
  for (uint32_t c : q.codes) ++hist[c];

  const double n = static_cast<double>(q.codes.size());
  uint64_t predictable = 0;
  a.min_code = UINT32_MAX;
  for (const auto& [code, count] : hist) {
    const double p = static_cast<double>(count) / n;
    a.code_entropy_bits -= p * std::log2(p);
    a.max_code = std::max(a.max_code, code);
    if (code != 0) {
      ++a.distinct_codes;
      a.min_code = std::min(a.min_code, code);
      predictable += count;
    }
  }
  if (a.min_code == UINT32_MAX) a.min_code = 0;
  a.predictable_fraction = static_cast<double>(predictable) / n;

  // Entropy-coded code stream + exact unpredictable blob + a table charge
  // of ~3 bytes per distinct code (matches the RLE'd canonical table) +
  // side info.
  const double code_bits = a.code_entropy_bits * n;
  a.estimated_bytes = static_cast<uint64_t>(
      code_bits / 8.0 + static_cast<double>(q.unpredictable.size()) +
      3.0 * static_cast<double>(a.distinct_codes) +
      static_cast<double>(q.side_info.size()));
  return a;
}

ProfileRow profile(std::span<const float> data, const Dims& dims,
                   const Params& params) {
  ProfileRow row;
  row.error_bound = params.abs_error_bound;
  const QuantizedField q = predict_quantize(data, dims, params);
  row.analysis = analyze_codes(q);
  row.estimated_cr =
      row.analysis.estimated_bytes == 0
          ? 0
          : static_cast<double>(data.size_bytes()) /
                static_cast<double>(row.analysis.estimated_bytes);
  return row;
}

double suggest_error_bound(std::span<const float> data, const Dims& dims,
                           double target_cr, double lo, double hi,
                           int iters) {
  SZSEC_REQUIRE(lo > 0 && hi > lo, "invalid bound bracket");
  SZSEC_REQUIRE(target_cr > 0, "target ratio must be positive");
  Params params;

  auto cr_at = [&](double eb) {
    params.abs_error_bound = eb;
    return profile(data, dims, params).estimated_cr;
  };
  if (cr_at(hi) < target_cr) return hi;  // unreachable target
  if (cr_at(lo) >= target_cr) return lo;

  double log_lo = std::log10(lo), log_hi = std::log10(hi);
  for (int i = 0; i < iters; ++i) {
    const double mid = (log_lo + log_hi) / 2;
    if (cr_at(std::pow(10.0, mid)) >= target_cr) {
      log_hi = mid;
    } else {
      log_lo = mid;
    }
  }
  return std::pow(10.0, log_hi);
}

}  // namespace szsec::sz
