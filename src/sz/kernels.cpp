// Scalar + SSE2 SZ row kernels and the per-call dispatcher.
//
// The scalar bodies here are the reference semantics: they restate the
// exact expressions from quantizer.h / pipeline.cpp, and every SIMD
// variant must match them bit-for-bit (see kernels.h).  The SSE2 path
// is compiled whenever the target has baseline SSE2 (always true on
// x86-64); the AVX2 path lives in kernels_avx2.cpp behind its own
// compile flags and is declared here when CMake enables it.

#include "sz/kernels.h"

#include <cmath>
#include <limits>

#include "common/cpu.h"

#if defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define SZSEC_KERNELS_SSE2 1
#include <emmintrin.h>
#endif

namespace szsec::sz::kernels {

namespace {

// SIMD quantize/dequantize do the code arithmetic in 32-bit lanes; fall
// back to the (int64) scalar path for implausibly large bin counts.
constexpr int64_t kMaxSimdRadius = int64_t{1} << 30;

// ---------------------------------------------------------------- scalar

template <typename T>
void predict_affine_row_scalar(double t_zy, double slope_x, double intercept,
                               size_t n, T* pred) {
  for (size_t i = 0; i < n; ++i) {
    pred[i] = static_cast<T>((t_zy + slope_x * static_cast<double>(i)) +
                             intercept);
  }
}

template <typename T>
void quantize_row_scalar(const T* values, const T* pred, size_t n, double eb,
                         int64_t radius, uint32_t* codes, T* recon) {
  const double two_eb = 2.0 * eb;
  for (size_t i = 0; i < n; ++i) {
    const double diff = static_cast<double>(values[i]) - pred[i];
    const double scaled = diff / two_eb;
    const double rounded = std::nearbyint(scaled);
    if (std::abs(rounded) >= static_cast<double>(radius) ||
        !std::isfinite(diff)) {
      codes[i] = 0;
      continue;
    }
    const T rec = static_cast<T>(pred[i] + rounded * two_eb);
    if (std::abs(static_cast<double>(rec) - values[i]) > eb) {
      codes[i] = 0;
      continue;
    }
    recon[i] = rec;
    codes[i] = static_cast<uint32_t>(static_cast<int64_t>(rounded) + radius);
  }
}

template <typename T>
void dequantize_row_scalar(const uint32_t* codes, T* values, size_t n,
                           double eb, int64_t radius) {
  const double two_eb = 2.0 * eb;
  for (size_t i = 0; i < n; ++i) {
    const int64_t q = static_cast<int64_t>(codes[i]) - radius;
    values[i] = static_cast<T>(static_cast<double>(values[i]) +
                               static_cast<double>(q) * two_eb);
  }
}

// ----------------------------------------------------------------- sse2

#ifdef SZSEC_KERNELS_SSE2

// Round-to-nearest-even without SSE4.1 ROUNDPD: adding and subtracting
// 1.5*2^52 forces the fraction bits out in [2^52, 2^53) where the ulp
// is 1.  Exact for |x| < 2^51; larger magnitudes come back merely huge,
// and every caller guards with |rounded| < radius (<= 2^30) anyway.
constexpr double kRoundMagic = 6755399441055744.0;

inline __m128d abs_pd(__m128d v) {
  return _mm_and_pd(
      v, _mm_castsi128_pd(_mm_set1_epi64x(0x7fffffffffffffffLL)));
}

inline __m128d round_pd(__m128d v) {
  const __m128d magic = _mm_set1_pd(kRoundMagic);
  return _mm_sub_pd(_mm_add_pd(v, magic), magic);
}

namespace sse2 {

// First half of the two-lane quantize body: rounding plus the
// range/finiteness guard.  The reconstruction-error guard is
// type-specific (the scalar code narrows to T *before* comparing), so
// it lives in quantize2_finish's callers.
inline void quantize2_pre(__m128d v, __m128d p, __m128d vtwo_eb,
                          __m128d vradius, __m128d vinf, __m128d& rounded,
                          __m128d& rec, __m128d& ok) {
  const __m128d diff = _mm_sub_pd(v, p);
  const __m128d scaled = _mm_div_pd(diff, vtwo_eb);
  rounded = round_pd(scaled);
  ok = _mm_and_pd(_mm_cmplt_pd(abs_pd(diff), vinf),
                  _mm_cmplt_pd(abs_pd(rounded), vradius));
  rec = _mm_add_pd(p, _mm_mul_pd(rounded, vtwo_eb));
}

// Second guard + code extraction.  `rec_t` is the reconstruction after
// any narrowing to T, widened back to double — what the scalar code
// compares.  Scalar form is `if (|rec - v| > eb) fail`, which *passes*
// on an unordered compare — mirror that with andnot(GT) rather than LE.
inline void quantize2_finish(__m128d v, __m128d rec_t, __m128d veb,
                             __m128d rounded, int32_t radius32, __m128d ok,
                             uint32_t code_out[2]) {
  ok = _mm_andnot_pd(_mm_cmpgt_pd(abs_pd(_mm_sub_pd(rec_t, v)), veb), ok);
  const __m128i q32 = _mm_cvtpd_epi32(rounded);
  alignas(16) int32_t cbuf[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(cbuf),
                  _mm_add_epi32(q32, _mm_set1_epi32(radius32)));
  const int m = _mm_movemask_pd(ok);
  code_out[0] = (m & 1) ? static_cast<uint32_t>(cbuf[0]) : 0;
  code_out[1] = (m & 2) ? static_cast<uint32_t>(cbuf[1]) : 0;
}

void quantize_row_f64(const double* values, const double* pred, size_t n,
                      double eb, int64_t radius, uint32_t* codes,
                      double* recon) {
  const __m128d veb = _mm_set1_pd(eb);
  const __m128d vtwo_eb = _mm_set1_pd(2.0 * eb);
  const __m128d vradius = _mm_set1_pd(static_cast<double>(radius));
  const __m128d vinf =
      _mm_set1_pd(std::numeric_limits<double>::infinity());
  const auto radius32 = static_cast<int32_t>(radius);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d v = _mm_loadu_pd(values + i);
    __m128d rounded, rec, ok;
    quantize2_pre(v, _mm_loadu_pd(pred + i), vtwo_eb, vradius, vinf, rounded,
                  rec, ok);
    uint32_t c[2];
    quantize2_finish(v, rec, veb, rounded, radius32, ok, c);
    alignas(16) double rbuf[2];
    _mm_store_pd(rbuf, rec);
    codes[i] = c[0];
    if (c[0] != 0) recon[i] = rbuf[0];
    codes[i + 1] = c[1];
    if (c[1] != 0) recon[i + 1] = rbuf[1];
  }
  quantize_row_scalar(values + i, pred + i, n - i, eb, radius, codes + i,
                      recon + i);
}

void quantize_row_f32(const float* values, const float* pred, size_t n,
                      double eb, int64_t radius, uint32_t* codes,
                      float* recon) {
  const __m128d veb = _mm_set1_pd(eb);
  const __m128d vtwo_eb = _mm_set1_pd(2.0 * eb);
  const __m128d vradius = _mm_set1_pd(static_cast<double>(radius));
  const __m128d vinf =
      _mm_set1_pd(std::numeric_limits<double>::infinity());
  const auto radius32 = static_cast<int32_t>(radius);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d v = _mm_cvtps_pd(_mm_castsi128_ps(_mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(values + i))));
    const __m128d p = _mm_cvtps_pd(_mm_castsi128_ps(_mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(pred + i))));
    __m128d rounded, rec, ok;
    quantize2_pre(v, p, vtwo_eb, vradius, vinf, rounded, rec, ok);
    // Narrow to float first — the scalar code casts to T and compares
    // the narrowed value against the bound.
    const __m128 rec_ps = _mm_cvtpd_ps(rec);
    uint32_t c[2];
    quantize2_finish(v, _mm_cvtps_pd(rec_ps), veb, rounded, radius32, ok, c);
    alignas(16) float rbuf[4];
    _mm_store_ps(rbuf, rec_ps);
    codes[i] = c[0];
    if (c[0] != 0) recon[i] = rbuf[0];
    codes[i + 1] = c[1];
    if (c[1] != 0) recon[i + 1] = rbuf[1];
  }
  quantize_row_scalar(values + i, pred + i, n - i, eb, radius, codes + i,
                      recon + i);
}

void predict_affine_row_f64(double t_zy, double slope_x, double intercept,
                            size_t n, double* pred) {
  const __m128d vt = _mm_set1_pd(t_zy);
  const __m128d vs = _mm_set1_pd(slope_x);
  const __m128d vb = _mm_set1_pd(intercept);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d xd =
        _mm_set_pd(static_cast<double>(i + 1), static_cast<double>(i));
    _mm_storeu_pd(pred + i,
                  _mm_add_pd(_mm_add_pd(vt, _mm_mul_pd(vs, xd)), vb));
  }
  for (size_t j = i; j < n; ++j) {
    pred[j] = (t_zy + slope_x * static_cast<double>(j)) + intercept;
  }
}

void predict_affine_row_f32(double t_zy, double slope_x, double intercept,
                            size_t n, float* pred) {
  const __m128d vt = _mm_set1_pd(t_zy);
  const __m128d vs = _mm_set1_pd(slope_x);
  const __m128d vb = _mm_set1_pd(intercept);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d xd =
        _mm_set_pd(static_cast<double>(i + 1), static_cast<double>(i));
    const __m128d p = _mm_add_pd(_mm_add_pd(vt, _mm_mul_pd(vs, xd)), vb);
    alignas(16) float buf[4];
    _mm_store_ps(buf, _mm_cvtpd_ps(p));
    pred[i] = buf[0];
    pred[i + 1] = buf[1];
  }
  for (size_t j = i; j < n; ++j) {
    pred[j] = static_cast<float>(
        (t_zy + slope_x * static_cast<double>(j)) + intercept);
  }
}

void dequantize_row_f64(const uint32_t* codes, double* values, size_t n,
                        double eb, int64_t radius) {
  const __m128d vtwo_eb = _mm_set1_pd(2.0 * eb);
  const __m128i vradius = _mm_set1_epi32(static_cast<int32_t>(radius));
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i c = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(codes + i));
    const __m128d q = _mm_cvtepi32_pd(_mm_sub_epi32(c, vradius));
    _mm_storeu_pd(values + i, _mm_add_pd(_mm_loadu_pd(values + i),
                                         _mm_mul_pd(q, vtwo_eb)));
  }
  dequantize_row_scalar(codes + i, values + i, n - i, eb, radius);
}

void dequantize_row_f32(const uint32_t* codes, float* values, size_t n,
                        double eb, int64_t radius) {
  const __m128d vtwo_eb = _mm_set1_pd(2.0 * eb);
  const __m128i vradius = _mm_set1_epi32(static_cast<int32_t>(radius));
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i c = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(codes + i));
    const __m128d q = _mm_cvtepi32_pd(_mm_sub_epi32(c, vradius));
    const __m128d p = _mm_cvtps_pd(_mm_castsi128_ps(_mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(values + i))));
    alignas(16) float buf[4];
    _mm_store_ps(buf, _mm_cvtpd_ps(_mm_add_pd(p, _mm_mul_pd(q, vtwo_eb))));
    values[i] = buf[0];
    values[i + 1] = buf[1];
  }
  dequantize_row_scalar(codes + i, values + i, n - i, eb, radius);
}

}  // namespace sse2

#endif  // SZSEC_KERNELS_SSE2

}  // namespace

#ifdef SZSEC_HAVE_AVX2
// Defined in kernels_avx2.cpp (compiled with -mavx2; no FMA, so the
// mul/add sequences round exactly like the scalar code).
namespace avx2 {
void predict_affine_row_f32(double t_zy, double slope_x, double intercept,
                            size_t n, float* pred);
void predict_affine_row_f64(double t_zy, double slope_x, double intercept,
                            size_t n, double* pred);
void quantize_row_f32(const float* values, const float* pred, size_t n,
                      double eb, int64_t radius, uint32_t* codes,
                      float* recon);
void quantize_row_f64(const double* values, const double* pred, size_t n,
                      double eb, int64_t radius, uint32_t* codes,
                      double* recon);
void dequantize_row_f32(const uint32_t* codes, float* values, size_t n,
                        double eb, int64_t radius);
void dequantize_row_f64(const uint32_t* codes, double* values, size_t n,
                        double eb, int64_t radius);
}  // namespace avx2
#endif

const char* active_backend() {
  const uint32_t f = cpu::enabled_features();
#ifdef SZSEC_HAVE_AVX2
  if (f & cpu::kAvx2) return "avx2";
#endif
#ifdef SZSEC_KERNELS_SSE2
  if (f & cpu::kSse2) return "sse2";
#endif
  return "scalar";
}

template <>
void predict_affine_row<float>(double t_zy, double slope_x, double intercept,
                               size_t n, float* pred) {
  const uint32_t f = cpu::enabled_features();
#ifdef SZSEC_HAVE_AVX2
  if (f & cpu::kAvx2) {
    return avx2::predict_affine_row_f32(t_zy, slope_x, intercept, n, pred);
  }
#endif
#ifdef SZSEC_KERNELS_SSE2
  if (f & cpu::kSse2) {
    return sse2::predict_affine_row_f32(t_zy, slope_x, intercept, n, pred);
  }
#endif
  (void)f;
  predict_affine_row_scalar(t_zy, slope_x, intercept, n, pred);
}

template <>
void predict_affine_row<double>(double t_zy, double slope_x, double intercept,
                                size_t n, double* pred) {
  const uint32_t f = cpu::enabled_features();
#ifdef SZSEC_HAVE_AVX2
  if (f & cpu::kAvx2) {
    return avx2::predict_affine_row_f64(t_zy, slope_x, intercept, n, pred);
  }
#endif
#ifdef SZSEC_KERNELS_SSE2
  if (f & cpu::kSse2) {
    return sse2::predict_affine_row_f64(t_zy, slope_x, intercept, n, pred);
  }
#endif
  (void)f;
  predict_affine_row_scalar(t_zy, slope_x, intercept, n, pred);
}

template <>
void quantize_row<float>(const float* values, const float* pred, size_t n,
                         double eb, int64_t radius, uint32_t* codes,
                         float* recon) {
  const uint32_t f = cpu::enabled_features();
  if (radius <= kMaxSimdRadius) {
#ifdef SZSEC_HAVE_AVX2
    if (f & cpu::kAvx2) {
      return avx2::quantize_row_f32(values, pred, n, eb, radius, codes,
                                    recon);
    }
#endif
#ifdef SZSEC_KERNELS_SSE2
    if (f & cpu::kSse2) {
      return sse2::quantize_row_f32(values, pred, n, eb, radius, codes,
                                    recon);
    }
#endif
  }
  (void)f;
  quantize_row_scalar(values, pred, n, eb, radius, codes, recon);
}

template <>
void quantize_row<double>(const double* values, const double* pred, size_t n,
                          double eb, int64_t radius, uint32_t* codes,
                          double* recon) {
  const uint32_t f = cpu::enabled_features();
  if (radius <= kMaxSimdRadius) {
#ifdef SZSEC_HAVE_AVX2
    if (f & cpu::kAvx2) {
      return avx2::quantize_row_f64(values, pred, n, eb, radius, codes,
                                    recon);
    }
#endif
#ifdef SZSEC_KERNELS_SSE2
    if (f & cpu::kSse2) {
      return sse2::quantize_row_f64(values, pred, n, eb, radius, codes,
                                    recon);
    }
#endif
  }
  (void)f;
  quantize_row_scalar(values, pred, n, eb, radius, codes, recon);
}

template <>
void dequantize_row<float>(const uint32_t* codes, float* values, size_t n,
                           double eb, int64_t radius) {
  const uint32_t f = cpu::enabled_features();
  if (radius <= kMaxSimdRadius) {
#ifdef SZSEC_HAVE_AVX2
    if (f & cpu::kAvx2) {
      return avx2::dequantize_row_f32(codes, values, n, eb, radius);
    }
#endif
#ifdef SZSEC_KERNELS_SSE2
    if (f & cpu::kSse2) {
      return sse2::dequantize_row_f32(codes, values, n, eb, radius);
    }
#endif
  }
  (void)f;
  dequantize_row_scalar(codes, values, n, eb, radius);
}

template <>
void dequantize_row<double>(const uint32_t* codes, double* values, size_t n,
                            double eb, int64_t radius) {
  const uint32_t f = cpu::enabled_features();
  if (radius <= kMaxSimdRadius) {
#ifdef SZSEC_HAVE_AVX2
    if (f & cpu::kAvx2) {
      return avx2::dequantize_row_f64(codes, values, n, eb, radius);
    }
#endif
#ifdef SZSEC_KERNELS_SSE2
    if (f & cpu::kSse2) {
      return sse2::dequantize_row_f64(codes, values, n, eb, radius);
    }
#endif
  }
  (void)f;
  dequantize_row_scalar(codes, values, n, eb, radius);
}

}  // namespace szsec::sz::kernels
