// SZ3-style multi-level interpolation predictor.
//
// The paper evaluates SZ-1.4 but notes its approach carries over to newer
// SZ versions, whose headline change is spline-interpolation prediction.
// This module provides that predictor as an alternative pipeline mode
// (Params::predictor == Predictor::kInterpolation) so the repo can show
// the schemes working on the successor design, plus an ablation bench
// comparing it against the block-hybrid predictor.
//
// Scheme: anchors on a coarse 2^L-stride grid are stored first (predicted
// as 0, i.e. effectively raw); then, level by level, midpoints along z,
// then y, then x are predicted by 4-point cubic interpolation of already
// reconstructed neighbours (falling back to linear/nearest at borders)
// and error-quantized exactly like the Lorenzo path, so the same
// quantizer, unpredictable encoder, Huffman stage, and encryption hooks
// apply unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytestream.h"
#include "sz/quantizer.h"
#include "sz/unpredictable.h"

namespace szsec::sz {

namespace interp_detail {

/// Cubic midpoint interpolation through 4 points at -3h,-h,+h,+3h:
///   p = (-f0 + 9 f1 + 9 f2 - f3) / 16
template <typename T>
inline T cubic(T fm3, T fm1, T fp1, T fp3) {
  return static_cast<T>(
      (-static_cast<double>(fm3) + 9.0 * fm1 + 9.0 * fp1 - fp3) / 16.0);
}

/// Interpolation traversal: visits every element of an (nz,ny,nx) volume
/// exactly once in the level/axis order described above and hands
/// `visit` the linear index plus a predictor closure input.
///
/// `visit(idx, pred)` is called with the predicted value computed from
/// `recon` (already-processed points only).  Used identically by the
/// compressor and decompressor, which keeps the two in lockstep.
template <typename T, typename Visit>
void traverse(const T* recon, size_t nz, size_t ny, size_t nx,
              Visit&& visit) {
  const size_t max_dim = std::max({nz, ny, nx});
  size_t stride = 1;
  while (stride * 2 < max_dim) stride *= 2;

  auto at = [&](size_t z, size_t y, size_t x) {
    return (z * ny + y) * nx + x;
  };

  // Anchor pass: the coarse grid, predicted as 0 (stored nearly raw).
  for (size_t z = 0; z < nz; z += stride) {
    for (size_t y = 0; y < ny; y += stride) {
      for (size_t x = 0; x < nx; x += stride) {
        visit(at(z, y, x), T{0});
      }
    }
  }

  // Axis interpolation for targets t = k*s + h along `n`-sized axis,
  // reading recon at linear offsets around the target.
  auto predict_axis = [&](size_t idx, size_t coord, size_t h, size_t n,
                          size_t axis_stride) -> T {
    const bool have_m3 = coord >= 3 * h;
    const bool have_p1 = coord + h < n;
    const bool have_p3 = coord + 3 * h < n;
    const T fm1 = recon[idx - h * axis_stride];
    if (have_p1) {
      const T fp1 = recon[idx + h * axis_stride];
      if (have_m3 && have_p3) {
        return cubic(recon[idx - 3 * h * axis_stride], fm1, fp1,
                     recon[idx + 3 * h * axis_stride]);
      }
      return static_cast<T>((static_cast<double>(fm1) + fp1) / 2.0);
    }
    return fm1;  // trailing border: nearest known neighbour
  };

  for (size_t s = stride; s >= 2; s /= 2) {
    const size_t h = s / 2;
    // Pass 1 — along z: targets (z % s == h, y % s == 0, x % s == 0).
    for (size_t z = h; z < nz; z += s) {
      for (size_t y = 0; y < ny; y += s) {
        for (size_t x = 0; x < nx; x += s) {
          const size_t idx = at(z, y, x);
          visit(idx, predict_axis(idx, z, h, nz, ny * nx));
        }
      }
    }
    // Pass 2 — along y: targets (z % h == 0, y % s == h, x % s == 0).
    for (size_t z = 0; z < nz; z += h) {
      for (size_t y = h; y < ny; y += s) {
        for (size_t x = 0; x < nx; x += s) {
          const size_t idx = at(z, y, x);
          visit(idx, predict_axis(idx, y, h, ny, nx));
        }
      }
    }
    // Pass 3 — along x: targets (z % h == 0, y % h == 0, x % s == h).
    for (size_t z = 0; z < nz; z += h) {
      for (size_t y = 0; y < ny; y += h) {
        for (size_t x = h; x < nx; x += s) {
          const size_t idx = at(z, y, x);
          visit(idx, predict_axis(idx, x, h, nx, 1));
        }
      }
    }
  }
}

}  // namespace interp_detail

/// Compresses one volume with the interpolation predictor: fills `codes`,
/// the unpredictable stream, and `recon` (the decoder-identical
/// reconstruction).
template <typename T>
void interp_encode_volume(const T* data, T* recon, size_t nz, size_t ny,
                          size_t nx, const LinearQuantizer& quant,
                          UnpredictableEncoder& unpred,
                          std::vector<uint32_t>& codes,
                          uint64_t& unpred_count) {
  interp_detail::traverse<T>(
      recon, nz, ny, nx, [&](size_t idx, T pred) {
        const T v = data[idx];
        T rv = pred;
        const uint32_t code = quant.quantize(v, pred, rv);
        codes.push_back(code);
        if (code == 0) {
          rv = unpred.put(v);
          ++unpred_count;
        }
        recon[idx] = rv;
      });
}

/// Decoder twin of interp_encode_volume.
template <typename T>
void interp_decode_volume(T* out, size_t nz, size_t ny, size_t nx,
                          const LinearQuantizer& quant,
                          UnpredictableDecoder& unpred,
                          const uint32_t*& code_it) {
  interp_detail::traverse<T>(out, nz, ny, nx, [&](size_t idx, T pred) {
    const uint32_t code = *code_it++;
    if (code == 0) {
      if constexpr (std::is_same_v<T, float>) {
        out[idx] = unpred.next_f32();
      } else {
        out[idx] = unpred.next_f64();
      }
    } else {
      SZSEC_CHECK_FORMAT(code < quant.bins(),
                         "quantization code out of range");
      out[idx] = quant.dequantize(code, pred);
    }
  });
}

}  // namespace szsec::sz
