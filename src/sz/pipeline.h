// The SZ-1.4-style four-stage pipeline, exposed stage by stage.
//
// Stage boundaries are public API because the paper's three secure schemes
// hook in at different points:
//
//   stage 1+2  predict_quantize()       field -> quantization codes
//   stage 3    huffman_encode_codes()   codes -> tree blob + codeword bits
//              [Encr-Quant encrypts tree+codewords; Encr-Huffman the tree]
//   stage 4    zlite::deflate()         everything -> compressed stream
//              [Cmpr-Encr encrypts after this]
//
// The inverse stages mirror them.  src/core assembles stages + encryption
// into complete containers; this module stays encryption-free.
#pragma once

#include <span>
#include <vector>

#include "common/bytestream.h"
#include "common/dims.h"
#include "common/timer.h"
#include "huffman/huffman.h"
#include "sz/params.h"

namespace szsec::sz {

/// Output of stages 1+2 (prediction + linear-scale quantization).
struct QuantizedField {
  Params params;
  Dims dims;
  DType dtype = DType::kFloat32;

  /// One code per element in block-scan order.  0 = unpredictable.
  std::vector<uint32_t> codes;

  /// Truncated-IEEE blob of unpredictable values, in scan order.
  Bytes unpredictable;
  uint64_t unpredictable_count = 0;

  /// Per-block predictor modes + quantized coefficients/means.
  Bytes side_info;
};

/// Output of stage 3 (variable-length encoding).
struct EncodedQuant {
  Bytes tree;       ///< serialized canonical Huffman table ("the tree")
  Bytes codewords;  ///< MSB-first packed codeword stream
  uint64_t symbol_count = 0;
};

/// Stages 1+2.  `times`, if non-null, accumulates "prediction" and
/// "quantization" stage durations (they are fused in one pass; the cost is
/// recorded as "predict+quantize").
QuantizedField predict_quantize(std::span<const float> data, const Dims& dims,
                                const Params& params,
                                StageTimes* times = nullptr);
QuantizedField predict_quantize(std::span<const double> data,
                                const Dims& dims, const Params& params,
                                StageTimes* times = nullptr);

/// Stage 3: builds the Huffman code table from the code histogram and
/// encodes the code stream.
EncodedQuant huffman_encode_codes(const QuantizedField& q,
                                  StageTimes* times = nullptr);

/// Stage 3 inverse.
std::vector<uint32_t> huffman_decode_codes(BytesView tree, BytesView codewords,
                                           uint64_t count,
                                           StageTimes* times = nullptr);

/// Stages 1+2 inverse: rebuilds the field from codes + side channel data.
/// `out` must have dims.count() elements.
void reconstruct(const Params& params, const Dims& dims,
                 std::span<const uint32_t> codes, BytesView unpredictable,
                 BytesView side_info, std::span<float> out,
                 StageTimes* times = nullptr);
void reconstruct(const Params& params, const Dims& dims,
                 std::span<const uint32_t> codes, BytesView unpredictable,
                 BytesView side_info, std::span<double> out,
                 StageTimes* times = nullptr);

/// Linear (row-major) index of every element in block-scan order:
/// codes[i] in a QuantizedField describes element scan_order[i] of the
/// original field.  Used by the Figure 3 predictability-map bench to map
/// quantization codes back onto the spatial grid.
std::vector<uint64_t> block_scan_order(const Dims& dims,
                                       const Params& params);

/// Fraction of elements that were predictable (paper Figure 2's x-axis
/// companion statistic).
inline double predictable_fraction(const QuantizedField& q) {
  if (q.codes.empty()) return 0.0;
  return 1.0 - static_cast<double>(q.unpredictable_count) /
                   static_cast<double>(q.codes.size());
}

}  // namespace szsec::sz
