// Fault-injecting ByteSource/ByteSink adapters for the durability
// campaign (tests/durability_test.cpp) and the retry-layer tests.
//
// Where src/testing/fault_injection.h mutates archive *bytes* (flip a
// bit, drop a chunk), these adapters break the *transport*: a read or
// write fails at byte N, stutters with transient errors, runs out of
// disk, or silently loses its tail like a power cut mid-write.  They
// compose with every other adapter in common/io.h — wrap a FaultySource
// in a RetrySource to prove transient bursts are absorbed, or put a
// CountingSink behind a FaultySink to see exactly how many bytes
// "reached disk" before the fault.
//
// All randomness is PropRng-seeded: a failing campaign case reproduces
// from its printed seed alone (tools/check_test_determinism.py).
#pragma once

#include <algorithm>
#include <cerrno>

#include "common/io.h"
#include "testing/rng.h"

namespace szsec::testing {

/// "Never" sentinel for the byte-offset triggers below.
inline constexpr uint64_t kNeverFault = ~uint64_t{0};

/// One adapter's fault schedule.  Offsets count bytes through the
/// adapter from construction; every trigger defaults to "never".
struct FaultPlan {
  /// Throw a PERMANENT IoError (`fail_errno`) once the stream position
  /// reaches this offset.  A sink delivers the bytes that fit below the
  /// boundary first — exactly like a real disk filling up mid-write.
  uint64_t fail_at = kNeverFault;
  int fail_errno = ENOSPC;
  /// Source: report end-of-stream at this offset (truncated file).
  /// Sink: silently DROP bytes past this offset while reporting success
  /// — the kill-style torn write of a power cut, where the writer
  /// believes the tail was written but it never reached the platter.
  uint64_t truncate_at = kNeverFault;
  /// Per-call probability of starting a transient-error burst.
  double transient_rate = 0.0;
  /// Consecutive transient IoErrors per burst (EINTR, retryable).
  uint32_t burst_len = 1;
};

/// ByteSource wrapper executing a FaultPlan.  Transient throws consume
/// nothing (the read may simply be repeated), so RetrySource composes
/// soundly on top.
class FaultySource final : public ByteSource {
 public:
  FaultySource(ByteSource& inner, const FaultPlan& plan, uint64_t seed = 1)
      : inner_(inner), plan_(plan), rng_(seed) {}

  size_t read(std::span<uint8_t> out) override {
    if (out.empty()) return 0;
    maybe_transient("injected transient read fault");
    if (pos_ >= plan_.fail_at) {
      throw IoError("injected read fault", plan_.fail_errno);
    }
    if (pos_ >= plan_.truncate_at) return 0;  // truncated: early EOF
    size_t want = out.size();
    want = static_cast<size_t>(
        std::min<uint64_t>(want, plan_.fail_at - pos_));
    want = static_cast<size_t>(
        std::min<uint64_t>(want, plan_.truncate_at - pos_));
    const size_t n = inner_.read(out.subspan(0, want));
    pos_ += n;
    return n;
  }

  /// Bytes successfully delivered so far.
  uint64_t position() const { return pos_; }
  /// Transient faults thrown so far.
  uint64_t faults() const { return faults_; }

 private:
  void maybe_transient(const char* what) {
    if (burst_ > 0) {
      --burst_;
      ++faults_;
      throw IoError(what, EINTR);
    }
    if (plan_.transient_rate > 0 && rng_.chance(plan_.transient_rate)) {
      burst_ = plan_.burst_len > 0 ? plan_.burst_len - 1 : 0;
      ++faults_;
      throw IoError(what, EINTR);
    }
  }

  ByteSource& inner_;
  FaultPlan plan_;
  PropRng rng_;
  uint64_t pos_ = 0;
  uint64_t faults_ = 0;
  uint32_t burst_ = 0;
};

/// ByteSink wrapper executing a FaultPlan.  Transient throws happen
/// BEFORE any byte is forwarded (all-or-nothing, accepted() == 0), so a
/// RetrySink retry re-issues exactly the unwritten view.  A fail_at
/// fault forwards the prefix that fits, then throws with accepted() set
/// to that prefix — the caller's view of a disk that filled up
/// mid-write.  truncate_at silently swallows the tail while reporting
/// success (torn write).
class FaultySink final : public ByteSink {
 public:
  /// `inner` may be null (bytes are swallowed, faults still fire).
  FaultySink(ByteSink* inner, const FaultPlan& plan, uint64_t seed = 1)
      : inner_(inner), plan_(plan), rng_(seed) {}

  void write(BytesView data) override {
    if (data.empty()) return;
    maybe_transient();
    if (pos_ >= plan_.fail_at) {
      throw IoError("injected write fault", plan_.fail_errno);
    }
    const uint64_t fits = plan_.fail_at - pos_;
    if (data.size() > fits) {
      deliver(data.subspan(0, static_cast<size_t>(fits)));
      pos_ = plan_.fail_at;
      throw IoError("injected write fault", plan_.fail_errno,
                    static_cast<size_t>(fits));
    }
    deliver(data);
    pos_ += data.size();
  }

  void flush() override {
    if (inner_ != nullptr) inner_->flush();
  }
  void sync() override {
    if (inner_ != nullptr) inner_->sync();
  }

  /// Bytes the writer believes were written.
  uint64_t position() const { return pos_; }
  /// Bytes that actually reached the inner sink (== position() until
  /// truncate_at, frozen after).
  uint64_t committed() const { return committed_; }
  uint64_t faults() const { return faults_; }

 private:
  void maybe_transient() {
    if (burst_ > 0) {
      --burst_;
      ++faults_;
      throw IoError("injected transient write fault", EINTR);
    }
    if (plan_.transient_rate > 0 && rng_.chance(plan_.transient_rate)) {
      burst_ = plan_.burst_len > 0 ? plan_.burst_len - 1 : 0;
      ++faults_;
      throw IoError("injected transient write fault", EINTR);
    }
  }

  /// Forwards the part of [pos_, pos_+data.size()) below truncate_at.
  void deliver(BytesView data) {
    if (inner_ == nullptr || data.empty()) return;
    if (pos_ >= plan_.truncate_at) return;  // whole view lost
    const uint64_t keep = plan_.truncate_at - pos_;
    const BytesView kept =
        data.size() > keep ? data.subspan(0, static_cast<size_t>(keep))
                           : data;
    inner_->write(kept);
    committed_ += kept.size();
  }

  ByteSink* inner_;
  FaultPlan plan_;
  PropRng rng_;
  uint64_t pos_ = 0;
  uint64_t committed_ = 0;
  uint64_t faults_ = 0;
  uint32_t burst_ = 0;
};

}  // namespace szsec::testing
