// Round-trip oracle + differential harness for one sampled configuration.
//
// The oracle encodes mechanically checkable forms of the paper's claims:
//
//  * Error-bound preservation — every finite reconstructed value is
//    within the (resolved) absolute error bound of the original, and
//    non-finite values round-trip bit-exactly through the unpredictable
//    encoder, for all three secure schemes exactly as for plain SZ.
//  * Scheme-equivalent recovery — the same plaintext field is recovered
//    regardless of where the cipher is spliced, which container framing
//    carries the codec output (v2 single container, v3 chunked archive,
//    v1 slab archive), how many worker threads ran, and whether decode
//    targeted an owned vector or a caller span (zero-copy path).
//  * Framing consistency — the plaintext header agrees with the
//    configuration that produced the container, the byte layout adds up
//    (header + payload + optional MAC tag == container), and the
//    CompressStats / PipelineMetrics accounting matches reality.
//
// check_roundtrip returns human-readable violations instead of asserting
// so the property test can attach SampledConfig::describe() — the full
// reproduction recipe — to every failure.
#pragma once

#include "testing/generator.h"

namespace szsec::testing {

/// Runs the complete round-trip + differential battery for `cfg`.
/// Empty result == every invariant held.  Throws nothing: unexpected
/// exceptions from the codec are converted into violations.
std::vector<std::string> check_roundtrip(const SampledConfig& cfg);

/// Differential for the seekable-reader subsystem: compresses `cfg`'s
/// field into a v3 archive (footer on AND footer off, so both the
/// footer parse and the prelude-index fallback are exercised), then
/// proves every sampled read_range and read_roi answer is bit-identical
/// to the corresponding slice of a full strict decode.  Ranges/ROIs are
/// drawn deterministically from cfg.seed: the full field, single
/// elements, chunk-interior and chunk-straddling spans, and (rank >= 2)
/// hyperslabs.  Empty result == the seekable path agrees everywhere.
std::vector<std::string> check_seekable(const SampledConfig& cfg);

}  // namespace szsec::testing
