// Reusable fault-injection harness for the robustness suites.
//
// Pure byte-level faults (bit flips, truncation, insertion, deletion)
// work on any buffer; the chunk-aware faults use the v3 archive index to
// hit exact chunk boundaries — drop, duplicate, reorder, truncate-at —
// without fixing the index up afterwards, which is the point: the faults
// model real storage damage, and the salvage decoder must cope with the
// stale index on its own.
#pragma once

#include <algorithm>
#include <random>
#include <utility>

#include "archive/chunked.h"

namespace szsec::testing {

/// Flips one bit (bit_index counts from bit 0 of byte 0).
inline Bytes flip_bit(BytesView in, size_t bit_index) {
  Bytes out(in.begin(), in.end());
  out[bit_index / 8] ^= static_cast<uint8_t>(1u << (bit_index % 8));
  return out;
}

inline Bytes flip_random_bit(BytesView in, std::mt19937_64& rng) {
  return flip_bit(in, rng() % (in.size() * 8));
}

/// Keeps the first `len` bytes.
inline Bytes truncate_to(BytesView in, size_t len) {
  return Bytes(in.begin(), in.begin() + static_cast<std::ptrdiff_t>(
                               std::min(len, in.size())));
}

/// Inserts `junk` before offset `pos`.
inline Bytes insert_bytes(BytesView in, size_t pos, BytesView junk) {
  Bytes out(in.begin(), in.begin() + static_cast<std::ptrdiff_t>(pos));
  out.insert(out.end(), junk.begin(), junk.end());
  out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(pos),
             in.end());
  return out;
}

/// Deletes `len` bytes starting at `pos`.
inline Bytes remove_range(BytesView in, size_t pos, size_t len) {
  Bytes out(in.begin(), in.begin() + static_cast<std::ptrdiff_t>(pos));
  const size_t end = std::min(in.size(), pos + len);
  out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(end),
             in.end());
  return out;
}

/// Byte range [begin, end) of chunk `id`'s frame in a v3 archive.
inline std::pair<size_t, size_t> chunk_span(BytesView archive, size_t id) {
  const archive::ChunkIndex ix = archive::read_chunk_index(archive);
  const archive::ChunkEntry& e = ix.entries.at(id);
  return {static_cast<size_t>(e.offset),
          static_cast<size_t>(e.offset + e.frame_len)};
}

/// Removes chunk `id`'s frame entirely (index left stale).
inline Bytes drop_chunk(BytesView archive, size_t id) {
  const auto [begin, end] = chunk_span(archive, id);
  return remove_range(archive, begin, end - begin);
}

/// Inserts a second copy of chunk `id`'s frame right after the original.
inline Bytes duplicate_chunk(BytesView archive, size_t id) {
  const auto [begin, end] = chunk_span(archive, id);
  return insert_bytes(archive, end, archive.subspan(begin, end - begin));
}

/// Swaps the frames of chunks `a` and `b` in place (index left stale).
inline Bytes swap_chunks(BytesView archive, size_t a, size_t b) {
  if (a > b) std::swap(a, b);
  const auto [a0, a1] = chunk_span(archive, a);
  const auto [b0, b1] = chunk_span(archive, b);
  Bytes out(archive.begin(), archive.begin() + static_cast<std::ptrdiff_t>(a0));
  out.insert(out.end(), archive.begin() + static_cast<std::ptrdiff_t>(b0),
             archive.begin() + static_cast<std::ptrdiff_t>(b1));
  out.insert(out.end(), archive.begin() + static_cast<std::ptrdiff_t>(a1),
             archive.begin() + static_cast<std::ptrdiff_t>(b0));
  out.insert(out.end(), archive.begin() + static_cast<std::ptrdiff_t>(a0),
             archive.begin() + static_cast<std::ptrdiff_t>(a1));
  out.insert(out.end(), archive.begin() + static_cast<std::ptrdiff_t>(b1),
             archive.end());
  return out;
}

/// Cuts the archive at the start of chunk `id`'s frame (so chunks
/// id..end are gone).
inline Bytes truncate_at_chunk(BytesView archive, size_t id) {
  return truncate_to(archive, chunk_span(archive, id).first);
}

/// Flips one random bit inside chunk `id`'s frame.
inline Bytes corrupt_chunk(BytesView archive, size_t id,
                           std::mt19937_64& rng) {
  const auto [begin, end] = chunk_span(archive, id);
  const size_t bit = begin * 8 + rng() % ((end - begin) * 8);
  return flip_bit(archive, bit);
}

}  // namespace szsec::testing
