#include "testing/mutators.h"

#include "core/container.h"

namespace szsec::testing {

namespace {

/// Flips a random bit inside [begin, end) of `in` (no-op span rejected
/// by the callers).
Bytes flip_in_region(BytesView in, size_t begin, size_t end, PropRng& rng) {
  const size_t bit = begin * 8 + rng.below((end - begin) * 8);
  return flip_bit(in, bit);
}

void add_flip(std::vector<Mutant>& out, BytesView base,
              const std::string& label, size_t begin, size_t end,
              PropRng& rng) {
  if (end > begin && end <= base.size()) {
    out.push_back({label, flip_in_region(base, begin, end, rng)});
  }
}

void add_truncate(std::vector<Mutant>& out, BytesView base,
                  const std::string& label, size_t len) {
  if (len < base.size()) out.push_back({label, truncate_to(base, len)});
}

}  // namespace

ContainerMap map_container(BytesView container) {
  const core::Header h = core::peek_header(container);
  ContainerMap m;
  m.header_end = core::write_header(h).size();
  // The serialized header ends with IV (16) | payload_crc (4) |
  // payload_size (8); see core/container.h write_header.
  m.size_begin = m.header_end - sizeof(uint64_t);
  m.crc_begin = m.size_begin - sizeof(uint32_t);
  m.iv_begin = m.crc_begin - 16;
  m.body_begin = m.header_end;
  const bool authed = (h.flags & core::kFlagAuthenticated) != 0;
  m.tag_begin = authed ? container.size() - 32 : container.size();
  m.body_end = m.tag_begin;
  SZSEC_REQUIRE(m.body_begin <= m.body_end, "container smaller than header");
  return m;
}

std::vector<Mutant> mutate_container(BytesView container, PropRng& rng) {
  const ContainerMap m = map_container(container);
  std::vector<Mutant> out;

  // Truncations at every structural boundary plus mid-region cuts.
  add_truncate(out, container, "truncate:empty", 0);
  add_truncate(out, container, "truncate:mid-magic", 3);
  add_truncate(out, container, "truncate:mid-header", m.header_end / 2);
  add_truncate(out, container, "truncate:header-only", m.header_end);
  add_truncate(out, container, "truncate:mid-body",
               m.body_begin + (m.body_end - m.body_begin) / 2);
  add_truncate(out, container, "truncate:last-byte", container.size() - 1);
  if (m.tag_begin < container.size()) {
    add_truncate(out, container, "truncate:tag-cut", m.tag_begin + 1);
  }

  // One bit flip per structural region.
  add_flip(out, container, "flip:magic", 0, 4, rng);
  add_flip(out, container, "flip:header-semantic", 4, m.iv_begin, rng);
  add_flip(out, container, "flip:iv", m.iv_begin, m.iv_begin + 16, rng);
  add_flip(out, container, "flip:payload-crc", m.crc_begin, m.crc_begin + 4,
           rng);
  add_flip(out, container, "flip:payload-size", m.size_begin,
           m.size_begin + 8, rng);
  add_flip(out, container, "flip:body", m.body_begin, m.body_end, rng);
  add_flip(out, container, "flip:mac-tag", m.tag_begin, container.size(),
           rng);

  // Length-field lies: the decoder must bound-check payload_size against
  // the actual buffer, and detect an in-bounds lie through the CRC.
  {
    Bytes huge(container.begin(), container.end());
    for (size_t i = 0; i < 8; ++i) huge[m.size_begin + i] = 0xFF;
    out.push_back({"lie:payload-size-huge", std::move(huge)});

    Bytes zero(container.begin(), container.end());
    for (size_t i = 0; i < 8; ++i) zero[m.size_begin + i] = 0;
    out.push_back({"lie:payload-size-zero", std::move(zero)});
  }

  // CRC wiped outright (not just flipped).
  {
    Bytes wiped(container.begin(), container.end());
    for (size_t i = 0; i < 4; ++i) wiped[m.crc_begin + i] = 0;
    out.push_back({"lie:payload-crc-zeroed", std::move(wiped)});
  }

  // Body splice: swap the two halves of the payload in place (valid
  // lengths, scrambled content).
  if (m.body_end - m.body_begin >= 2) {
    Bytes spliced(container.begin(), container.end());
    const size_t half = (m.body_end - m.body_begin) / 2;
    std::rotate(spliced.begin() + static_cast<std::ptrdiff_t>(m.body_begin),
                spliced.begin() + static_cast<std::ptrdiff_t>(m.body_begin +
                                                              half),
                spliced.begin() + static_cast<std::ptrdiff_t>(m.body_end));
    out.push_back({"splice:body-halves", std::move(spliced)});
  }

  // Junk insertion mid-body (shifts everything behind it).
  {
    const Bytes junk = rng.bytes(7);
    out.push_back(
        {"insert:mid-body",
         insert_bytes(container,
                      m.body_begin + (m.body_end - m.body_begin) / 2,
                      BytesView(junk))});
  }
  return out;
}

std::vector<Mutant> mutate_archive(BytesView archive, PropRng& rng) {
  const archive::ChunkIndex ix = archive::read_chunk_index(archive);
  std::vector<Mutant> out;

  // Truncation at every frame boundary, mid-prelude, and mid-frame.
  add_truncate(out, archive, "truncate:mid-index", ix.body_start / 2);
  add_truncate(out, archive, "truncate:prelude-only", ix.body_start);
  for (size_t i = 0; i < ix.entries.size(); ++i) {
    add_truncate(out, archive,
                 "truncate:frame-" + std::to_string(i) + "-start",
                 static_cast<size_t>(ix.entries[i].offset));
    add_truncate(out, archive, "truncate:frame-" + std::to_string(i) + "-mid",
                 static_cast<size_t>(ix.entries[i].offset +
                                     ix.entries[i].frame_len / 2));
  }
  add_truncate(out, archive, "truncate:last-byte", archive.size() - 1);

  // Frame splices via the shared fault primitives (index left stale on
  // purpose — that is exactly the damage salvage must survive).
  for (size_t i = 0; i < ix.entries.size(); ++i) {
    out.push_back({"splice:drop-chunk-" + std::to_string(i),
                   drop_chunk(archive, i)});
  }
  out.push_back({"splice:duplicate-chunk-0", duplicate_chunk(archive, 0)});
  if (ix.entries.size() >= 2) {
    out.push_back({"splice:swap-first-last",
                   swap_chunks(archive, 0, ix.entries.size() - 1)});
  }

  // Index CRC (the u32 directly before the first frame).
  add_flip(out, archive, "flip:index-crc", ix.body_start - 4, ix.body_start,
           rng);
  // Prelude dims/index region.
  add_flip(out, archive, "flip:prelude", 4, ix.body_start - 4, rng);

  // Per-frame structural damage: resync marker, frame header varints +
  // container CRC, embedded container bytes.
  for (size_t i = 0; i < ix.entries.size(); ++i) {
    const size_t begin = static_cast<size_t>(ix.entries[i].offset);
    const size_t end =
        static_cast<size_t>(ix.entries[i].offset + ix.entries[i].frame_len);
    const std::string n = std::to_string(i);

    // Locate the embedded container by parsing the frame header.
    ByteReader r(archive.subspan(begin, end - begin));
    r.get_u64();     // resync marker
    r.get_varint();  // chunk id
    r.get_varint();  // row start
    r.get_varint();  // row extent
    const size_t len_field = begin + r.pos();
    r.get_varint();  // container length
    r.get_u32();     // container CRC
    const size_t embedded = begin + r.pos();

    add_flip(out, archive, "flip:marker-" + n, begin, begin + 8, rng);
    add_flip(out, archive, "flip:frame-header-" + n, begin + 8, embedded,
             rng);
    add_flip(out, archive, "lie:frame-len-" + n, len_field, len_field + 1,
             rng);
    add_flip(out, archive, "flip:chunk-container-" + n, embedded, end, rng);
  }
  return out;
}

}  // namespace szsec::testing
