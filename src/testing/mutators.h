// Structure-aware container mutators.
//
// Random byte fuzzing mostly dies in the magic check; these mutators
// parse the container first and then damage *specific* structures — a
// length field, a CRC, the IV, one frame of a chunked archive — so every
// decoder branch past the cheap validations gets exercised.  Built on
// the byte-level fault primitives in testing/fault_injection.h (the same
// harness the hand-written robustness suites use).
//
// Contract checked by the mutation tests (tests/container_mutation_test):
// every mutant fed to a strict decoder either throws szsec::Error or
// decodes to output bit-identical to the unmutated baseline (semantically
// inert bits exist in any DEFLATE-style stream); salvage decoding never
// throws and its SalvageReport stays consistent with the injected damage.
#pragma once

#include <string>
#include <vector>

#include "testing/fault_injection.h"
#include "testing/rng.h"

namespace szsec::testing {

/// One damaged variant of a container/archive, labelled with the exact
/// structural fault so failures name the decoder path that broke.
struct Mutant {
  std::string label;
  Bytes bytes;
};

/// Byte map of a v2 container (offsets into the container buffer).
/// The trailing fixed-size header fields are located from the back of
/// the serialized header; everything before them is the variable-length
/// semantic prefix (magic, scheme, dims, params...).
struct ContainerMap {
  size_t header_end = 0;   ///< first body byte
  size_t iv_begin = 0;     ///< 16-byte IV
  size_t crc_begin = 0;    ///< u32 payload CRC
  size_t size_begin = 0;   ///< u64 payload size
  size_t body_begin = 0;
  size_t body_end = 0;     ///< == tag_begin when authenticated
  size_t tag_begin = 0;    ///< 32-byte HMAC tag; == container size if none
};

/// Parses a well-formed v2 container into its byte map.  Throws Error on
/// malformed input (mutators only ever start from valid containers).
ContainerMap map_container(BytesView container);

/// Structure-aware mutants of one v2 container: truncations at every
/// structural boundary, per-region bit flips (semantic header prefix,
/// IV, payload CRC, payload size, body, MAC tag), length-field lies, and
/// body splices.  `rng` picks intra-region offsets; the set of regions
/// covered is deterministic.
std::vector<Mutant> mutate_container(BytesView container, PropRng& rng);

/// Structure-aware mutants of a v3 chunked archive: truncation at every
/// frame boundary (and mid-prelude/mid-frame), dropped / duplicated /
/// swapped chunk frames, index CRC corruption, per-region bit flips of a
/// frame header vs. its embedded container, resync-marker damage, and
/// frame-length lies.
std::vector<Mutant> mutate_archive(BytesView archive, PropRng& rng);

}  // namespace szsec::testing
