// Configuration- and field-space sampling for the property suite.
//
// One SampledConfig is a full point in the codec's configuration space:
// scheme x dtype x cipher/mode/auth x compression parameters x container
// kind knobs (chunk/slab count, threads) x a synthetic input field.  The
// sampler is total — every value it produces is a *valid* configuration
// the library documents as supported — so any failure the oracle reports
// against a sample is a genuine bug, not a bad test case.
//
// Determinism contract: sample_config(rng) consumes only PropRng draws,
// and the synthesized field depends only on SampledConfig::seed, so a
// failing sample is reproduced by re-running with the same master seed
// (or directly from the one-line describe() string, which embeds it).
#pragma once

#include <string>
#include <vector>

#include "core/stage.h"
#include "testing/rng.h"

namespace szsec::testing {

/// Shape of the synthetic input field.
enum class FieldKind : uint8_t {
  kConstant,        ///< one value everywhere (degenerate Huffman alphabet)
  kRamp,            ///< linear ramp (maximally predictable)
  kSmooth,          ///< box-blurred noise (SDRBench-like, the common case)
  kTurbulent,       ///< white noise (worst case: mostly unpredictable)
  kNonFiniteLaced,  ///< smooth field with NaN/±Inf injected at random sites
  kTiny,            ///< 1..8 elements (boundary sizes)
};

const char* field_kind_name(FieldKind k);

/// One sampled point in the codec configuration space.
struct SampledConfig {
  uint64_t seed = 0;  ///< sub-seed driving field synthesis + IV DRBGs
  sz::Params params;
  core::Scheme scheme = core::Scheme::kNone;
  core::CipherSpec spec;
  sz::DType dtype = sz::DType::kFloat32;
  FieldKind field = FieldKind::kSmooth;
  Dims dims;
  Bytes key;        ///< sized for spec.kind; empty for Scheme::kNone
  size_t chunks = 1;   ///< v3 chunk count == v1 slab count for differentials
  unsigned threads = 2;  ///< parallel decode/encode worker count to test

  /// One line with everything needed to reproduce the sample by hand.
  std::string describe() const;
};

/// Draws a complete valid configuration.  Guarantees:
///  * key length matches crypto::cipher_key_size(spec.kind),
///  * REL error-bound mode is only sampled for finite field kinds,
///  * chunks <= dims[0] so chunk planning never degenerates.
SampledConfig sample_config(PropRng& rng);

/// Synthesizes the input field for `cfg` (f32 variant; call the one
/// matching cfg.dtype).  Deterministic in cfg.seed/cfg.field/cfg.dims.
std::vector<float> synthesize_f32(const SampledConfig& cfg);
std::vector<double> synthesize_f64(const SampledConfig& cfg);

}  // namespace szsec::testing
