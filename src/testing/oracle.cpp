#include "testing/oracle.h"

#include <bit>
#include <cmath>
#include <sstream>

#include "archive/chunked.h"
#include "core/container.h"
#include "core/secure_compressor.h"
#include "parallel/slab.h"

namespace szsec::testing {

namespace {

/// Collects violations with printf-convenience.
class Check {
 public:
  void fail(const std::string& what) { violations_.push_back(what); }

  void expect(bool ok, const std::string& what) {
    if (!ok) fail(what);
  }

  std::vector<std::string> take() { return std::move(violations_); }

 private:
  std::vector<std::string> violations_;
};

template <typename T>
uint64_t to_bits(T v) {
  if constexpr (sizeof(T) == 4) {
    return std::bit_cast<uint32_t>(v);
  } else {
    return std::bit_cast<uint64_t>(v);
  }
}

/// Error-bound invariant over a whole field: finite values within eb,
/// non-finite values bit-identical.
template <typename T>
void check_bound(Check& c, std::span<const T> original,
                 std::span<const T> round, double eb, const char* path) {
  if (original.size() != round.size()) {
    c.fail(std::string(path) + ": size mismatch (decompressed-size "
           "exactness violated)");
    return;
  }
  for (size_t i = 0; i < original.size(); ++i) {
    const double x = static_cast<double>(original[i]);
    if (!std::isfinite(x)) {
      if (to_bits(original[i]) != to_bits(round[i])) {
        std::ostringstream os;
        os << path << ": non-finite value at " << i
           << " not bit-identical after round trip";
        c.fail(os.str());
        return;  // one report per field is enough
      }
      continue;
    }
    const double err = std::abs(x - static_cast<double>(round[i]));
    if (!(err <= eb)) {
      std::ostringstream os;
      os << path << ": |x-x'| = " << err << " > eb = " << eb << " at index "
         << i << " (x = " << x << ", x' = " << static_cast<double>(round[i])
         << ")";
      c.fail(os.str());
      return;
    }
  }
}

template <typename T>
bool bits_equal(std::span<const T> a, std::span<const T> b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (to_bits(a[i]) != to_bits(b[i])) return false;
  }
  return true;
}

template <typename T>
const std::vector<T>& pick_vec(const core::DecompressResult& r) {
  if constexpr (sizeof(T) == 4) {
    return r.f32;
  } else {
    return r.f64;
  }
}

template <typename T>
std::vector<T> synthesize(const SampledConfig& cfg) {
  if constexpr (sizeof(T) == 4) {
    return synthesize_f32(cfg);
  } else {
    return synthesize_f64(cfg);
  }
}

/// Header + layout + accounting consistency for one v2 container.
template <typename T>
void check_container_consistency(Check& c, const SampledConfig& cfg,
                                 const core::CompressResult& r,
                                 size_t element_count) {
  const core::Header h = core::peek_header(BytesView(r.container));
  c.expect(h.scheme == cfg.scheme, "header scheme != configured scheme");
  c.expect(h.dtype == cfg.dtype, "header dtype != configured dtype");
  c.expect(h.dims == cfg.dims, "header dims != input dims");
  if (cfg.scheme != core::Scheme::kNone) {
    c.expect(h.cipher_kind == cfg.spec.kind, "header cipher kind mismatch");
    c.expect(h.cipher_mode == cfg.spec.mode, "header cipher mode mismatch");
    c.expect(((h.flags & core::kFlagAuthenticated) != 0) ==
                 cfg.spec.authenticate,
             "header auth flag mismatch");
  }
  if (cfg.params.eb_mode == sz::ErrorBoundMode::kAbs) {
    c.expect(h.params.abs_error_bound == cfg.params.abs_error_bound,
             "header error bound != configured absolute bound");
  } else {
    c.expect(h.params.abs_error_bound > 0,
             "resolved REL bound not positive in header");
  }
  c.expect(h.params.quant_bins == cfg.params.quant_bins,
           "header quant_bins mismatch");

  // Byte layout: header + payload (+ 32-byte HMAC tag) == container.
  const size_t header_size = core::write_header(h).size();
  const size_t tag = cfg.spec.authenticate &&
                             cfg.scheme != core::Scheme::kNone
                         ? 32
                         : 0;
  c.expect(header_size + h.payload_size + tag == r.container.size(),
           "container size != header + payload_size (+ tag)");

  // Stats accounting.
  c.expect(r.stats.raw_bytes == element_count * sz::dtype_size(cfg.dtype),
           "stats.raw_bytes != element_count * dtype size");
  c.expect(r.stats.container_bytes == r.container.size(),
           "stats.container_bytes != container size");
  c.expect(r.stats.element_count == element_count,
           "stats.element_count != input element count");

  // Metrics: every forward stage of the scheme's chain reported, and the
  // stage-1 byte flow saw the whole raw field.
  const auto& all = r.times.all();
  for (const char* stage : {"predict+quantize", "huffman", "lossless"}) {
    c.expect(all.find(stage) != all.end(),
             std::string("metrics missing stage ") + stage);
  }
  c.expect((all.find("encrypt") != all.end()) ==
               (cfg.scheme != core::Scheme::kNone),
           "metrics 'encrypt' presence != scheme encrypts");
  c.expect(r.times.metric("predict+quantize").bytes_in == r.stats.raw_bytes,
           "predict+quantize bytes_in != raw bytes");
  c.expect(r.times.metric("lossless").bytes_out > 0,
           "lossless stage recorded no output bytes");
}

template <typename T>
std::vector<std::string> check_roundtrip_impl(const SampledConfig& cfg) {
  Check c;
  const std::vector<T> field = synthesize<T>(cfg);
  const std::span<const T> in(field);
  const BytesView key(cfg.key);

  // --- v2 single container: encode twice with identically seeded DRBGs;
  // a deterministic codec must produce identical bytes.
  crypto::CtrDrbg d1(cfg.seed + 1), d2(cfg.seed + 1);
  const core::SecureCompressor comp(cfg.params, cfg.scheme, key, cfg.spec,
                                    &d1);
  const core::SecureCompressor comp2(cfg.params, cfg.scheme, key, cfg.spec,
                                     &d2);
  const core::CompressResult r = comp.compress(in, cfg.dims);
  const core::CompressResult r2 = comp2.compress(in, cfg.dims);
  c.expect(r.container == r2.container,
           "v2 encode not deterministic for a fixed DRBG seed");

  check_container_consistency<T>(c, cfg, r, field.size());
  const double eb =
      core::peek_header(BytesView(r.container)).params.abs_error_bound;

  const core::DecompressResult out = comp.decompress(BytesView(r.container));
  c.expect(out.dtype == cfg.dtype, "decode dtype mismatch");
  c.expect(out.dims == cfg.dims, "decode dims mismatch");
  const std::vector<T>& v2_plain = pick_vec<T>(out);
  check_bound<T>(c, in, v2_plain, eb, "v2 decode");

  // --- zero-copy differential: decoding into a caller span must yield
  // bit-identical elements to the owned-vector decode.
  {
    core::codec::CodecRuntime rt(cfg.params, cfg.scheme, key, cfg.spec);
    std::vector<T> dst(field.size());
    core::codec::DecodeOptions opts;
    if constexpr (sizeof(T) == 4) {
      opts.into_f32 = std::span<float>(dst);
    } else {
      opts.into_f64 = std::span<double>(dst);
    }
    const core::DecompressResult span_out =
        core::codec::decode_payload(rt.config(), BytesView(r.container),
                                    opts);
    c.expect(pick_vec<T>(span_out).empty(),
             "span decode also populated the owned vector");
    c.expect(bits_equal<T>(std::span<const T>(dst), v2_plain),
             "into-span decode != owned-vector decode");
  }

  // --- authenticated containers must reject a wrong key outright.
  if (cfg.scheme != core::Scheme::kNone && cfg.spec.authenticate) {
    Bytes bad_key = cfg.key;
    bad_key.back() ^= 0x01;
    const core::SecureCompressor wrong(cfg.params, cfg.scheme,
                                       BytesView(bad_key), cfg.spec);
    try {
      (void)wrong.decompress(BytesView(r.container));
      c.fail("authenticated container decoded under a wrong key");
    } catch (const Error&) {
    }
  }

  // --- v3 chunked archive: serial and parallel runs must emit identical
  // archive bytes and recover identical plaintext.
  archive::ChunkedConfig serial_cfg;
  serial_cfg.threads = 1;
  serial_cfg.chunks = cfg.chunks;
  archive::ChunkedConfig par_cfg = serial_cfg;
  par_cfg.threads = cfg.threads;

  crypto::CtrDrbg d3(cfg.seed + 2), d4(cfg.seed + 2);
  const archive::ChunkedCompressResult a1 = archive::compress_chunked(
      in, cfg.dims, cfg.params, cfg.scheme, key, cfg.spec, serial_cfg, &d3);
  const archive::ChunkedCompressResult a2 = archive::compress_chunked(
      in, cfg.dims, cfg.params, cfg.scheme, key, cfg.spec, par_cfg, &d4);
  c.expect(a1.archive == a2.archive,
           "v3 archive bytes differ between 1 thread and " +
               std::to_string(cfg.threads) + " threads");
  c.expect(a1.chunk_count == cfg.chunks, "v3 chunk count != requested");

  std::vector<T> v3_serial, v3_parallel;
  if constexpr (sizeof(T) == 4) {
    v3_serial =
        archive::decompress_chunked_f32(BytesView(a1.archive), key,
                                        serial_cfg);
    v3_parallel =
        archive::decompress_chunked_f32(BytesView(a1.archive), key, par_cfg);
  } else {
    v3_serial =
        archive::decompress_chunked_f64(BytesView(a1.archive), key,
                                        serial_cfg);
    v3_parallel =
        archive::decompress_chunked_f64(BytesView(a1.archive), key, par_cfg);
  }
  c.expect(bits_equal<T>(std::span<const T>(v3_serial),
                         std::span<const T>(v3_parallel)),
           "v3 strict decode differs between 1 thread and " +
               std::to_string(cfg.threads) + " threads");
  // Per-chunk REL resolution uses the chunk's own range, which is <= the
  // field's range, so the v2-resolved bound is valid for every chunk.
  check_bound<T>(c, in, v3_serial, eb, "v3 strict decode");

  // Chunking changes prediction context at slab boundaries, so v3 == v2
  // plaintext only holds when one chunk spans the whole field.
  if (cfg.chunks == 1) {
    c.expect(bits_equal<T>(std::span<const T>(v3_serial), v2_plain),
             "single-chunk v3 plaintext != v2 plaintext");
  }

  // --- streaming differential: the streaming compressor fed the same
  // elements under the same DRBG seed must emit the in-memory archive
  // byte for byte (temp-file spool and thread fan-out included), and the
  // streaming decoder must survive a worst-case 1-byte read schedule.
  {
    const BytesView field_bytes(reinterpret_cast<const uint8_t*>(in.data()),
                                in.size() * sizeof(T));
    crypto::CtrDrbg d6(cfg.seed + 2);
    MemorySource src(field_bytes);
    MemorySink dst;
    archive::ChunkedConfig stream_cfg = par_cfg;
    stream_cfg.spool = FrameSpool::Backing::kTempFile;
    const archive::ChunkedStreamResult sres =
        archive::compress_chunked_stream(src, dst, cfg.dtype, cfg.dims,
                                         cfg.params, cfg.scheme, key,
                                         cfg.spec, stream_cfg, &d6);
    c.expect(dst.bytes() == a1.archive,
             "streamed v3 archive != in-memory archive bytes");
    c.expect(sres.archive_bytes == a1.archive.size(),
             "streamed archive_bytes != emitted size");

    MemorySource raw(BytesView(a1.archive));
    ChokedSource dribble(raw, 1);
    MemorySink plain;
    const archive::ChunkedStreamDecodeResult dres =
        archive::decompress_chunked_stream(dribble, plain, key, par_cfg);
    c.expect(dres.dims == cfg.dims, "streamed decode dims mismatch");
    c.expect(dres.dtype == cfg.dtype, "streamed decode dtype mismatch");
    const std::span<const T> streamed(
        reinterpret_cast<const T*>(plain.bytes().data()),
        plain.bytes().size() / sizeof(T));
    c.expect(bits_equal<T>(streamed, std::span<const T>(v3_serial)),
             "streamed v3 decode != in-memory strict decode");
  }

  // --- v1 slab archive with the same split must reconstruct the exact
  // same plaintext as the v3 archive (identical slab planning).
  {
    parallel::SlabConfig scfg;
    scfg.threads = cfg.threads;
    scfg.slabs = cfg.chunks;
    crypto::CtrDrbg d5(cfg.seed + 3);
    const parallel::SlabCompressResult sa = parallel::compress_slabs(
        in, cfg.dims, cfg.params, cfg.scheme, key, cfg.spec, scfg, &d5);
    {
      // Sink-streamed v1 writer must match the in-memory archive too.
      crypto::CtrDrbg d7(cfg.seed + 3);
      MemorySink slab_sink;
      (void)parallel::compress_slabs_to(slab_sink, in, cfg.dims, cfg.params,
                                        cfg.scheme, key, cfg.spec, scfg,
                                        &d7);
      c.expect(slab_sink.bytes() == sa.archive,
               "streamed v1 slab archive != in-memory archive bytes");
    }
    std::vector<T> slab_plain;
    if constexpr (sizeof(T) == 4) {
      slab_plain =
          parallel::decompress_slabs_f32(BytesView(sa.archive), key, scfg);
    } else {
      slab_plain =
          parallel::decompress_slabs_f64(BytesView(sa.archive), key, scfg);
    }
    c.expect(bits_equal<T>(std::span<const T>(slab_plain),
                           std::span<const T>(v3_serial)),
             "v1 slab plaintext != v3 chunked plaintext for the same split");
  }

  // --- salvage of an undamaged archive is lossless and says so.
  {
    archive::SalvageOptions sopts;
    sopts.threads = cfg.threads;
    const archive::SalvageResult sr =
        sizeof(T) == 4
            ? archive::decompress_salvage(BytesView(a1.archive), key, sopts)
            : archive::decompress_salvage_f64(BytesView(a1.archive), key,
                                              sopts);
    c.expect(sr.report.index_intact, "salvage: intact archive index flagged");
    c.expect(sr.report.complete(),
             "salvage: intact archive not fully recovered");
    c.expect(sr.report.elements_recovered == field.size(),
             "salvage: elements_recovered != field size on intact archive");
    const std::vector<T>& salvaged = [&]() -> const std::vector<T>& {
      if constexpr (sizeof(T) == 4) {
        return sr.f32;
      } else {
        return sr.f64;
      }
    }();
    c.expect(bits_equal<T>(std::span<const T>(salvaged),
                           std::span<const T>(v3_serial)),
             "salvage of intact archive != strict decode");
  }

  return c.take();
}

}  // namespace

std::vector<std::string> check_roundtrip(const SampledConfig& cfg) {
  try {
    if (cfg.dtype == sz::DType::kFloat32) {
      return check_roundtrip_impl<float>(cfg);
    }
    return check_roundtrip_impl<double>(cfg);
  } catch (const std::exception& e) {
    return {std::string("unexpected exception: ") + e.what()};
  }
}

}  // namespace szsec::testing
