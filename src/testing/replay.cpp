#include "testing/replay.h"

#include <cstdlib>

#include "archive/chunked.h"
#include "archive/seekable.h"
#include "core/secure_compressor.h"
#include "crypto/cipher.h"
#include "huffman/huffman.h"
#include "zlite/zlite.h"

namespace szsec::testing {

Bytes replay_key(size_t n) {
  Bytes k(n);
  for (size_t i = 0; i < n; ++i) {
    k[i] = static_cast<uint8_t>(0x5A ^ (7 * i + 9));
  }
  return k;
}

void replay_decode(BytesView input) {
  core::Header h;
  try {
    h = core::peek_header(input);
  } catch (const Error&) {
    return;
  }
  core::CipherSpec spec;
  spec.kind = h.cipher_kind;
  spec.mode = h.cipher_mode;
  spec.authenticate = (h.flags & core::kFlagAuthenticated) != 0;
  const Bytes key = replay_key(crypto::cipher_key_size(h.cipher_kind));
  try {
    const core::SecureCompressor c(
        sz::Params{}, h.scheme,
        h.scheme == core::Scheme::kNone ? BytesView{} : BytesView(key), spec);
    (void)c.decompress(input);
  } catch (const Error&) {
  }
}

void replay_huffman(BytesView input) {
  if (input.size() < 4) return;
  const size_t count = input[0] | (size_t{input[1]} << 8);
  size_t tree_len = input[2] | (size_t{input[3]} << 8);
  const BytesView rest = input.subspan(4);
  if (tree_len > rest.size()) tree_len = rest.size();
  try {
    const huffman::CodeTable table =
        huffman::deserialize_table(rest.subspan(0, tree_len));
    (void)huffman::decode(table, rest.subspan(tree_len), count);
  } catch (const Error&) {
  }
}

void replay_zlite(BytesView input) {
  Bytes plain;
  try {
    plain = zlite::inflate(input);
  } catch (const Error&) {
    return;
  }
  // Whatever inflates must survive our own deflate/inflate round trip
  // bit-identically; abort (so the fuzzer records it) if not.
  const Bytes re = zlite::deflate(BytesView(plain));
  if (zlite::inflate(BytesView(re)) != plain) std::abort();
}

void replay_chunked(BytesView input) {
  const Bytes key = replay_key(16);
  archive::ChunkedConfig cfg;
  cfg.threads = 1;
  try {
    (void)archive::read_chunk_index(input);
  } catch (const Error&) {
  }
  try {
    (void)archive::decompress_chunked_f32(input, BytesView(key), cfg);
  } catch (const Error&) {
  }
  try {
    (void)archive::decompress_chunked_f64(input, BytesView(key), cfg);
  } catch (const Error&) {
  }
  archive::SalvageOptions opts;
  opts.threads = 1;
  try {
    (void)archive::decompress_salvage(input, BytesView(key), opts);
  } catch (const Error&) {
  }
  // Seek-table surface: footer/trailer parse, then a random-access open
  // plus a one-element read at each end.  Anything other than a typed
  // Error on arbitrary bytes is a finding.
  try {
    (void)archive::read_seek_table(input);
  } catch (const Error&) {
  }
  try {
    archive::SeekableOptions sopt;
    sopt.threads = 1;
    const auto reader =
        archive::SeekableReader::open(input, BytesView(key), sopt);
    const uint64_t n = reader->elements();
    if (n > 0) {
      if (reader->dtype() == sz::DType::kFloat32) {
        std::vector<float> out(1);
        reader->read_range(0, 1, std::span<float>(out));
        reader->read_range(n - 1, n, std::span<float>(out));
      } else {
        std::vector<double> out(1);
        reader->read_range(0, 1, std::span<double>(out));
        reader->read_range(n - 1, n, std::span<double>(out));
      }
    }
  } catch (const Error&) {
  }
}

void replay_family(const std::string& family, BytesView input) {
  if (family == "decode") {
    replay_decode(input);
  } else if (family == "huffman") {
    replay_huffman(input);
  } else if (family == "zlite") {
    replay_zlite(input);
  } else if (family == "chunked") {
    replay_chunked(input);
  } else {
    replay_decode(input);
    replay_huffman(input);
    replay_zlite(input);
    replay_chunked(input);
  }
}

}  // namespace szsec::testing
