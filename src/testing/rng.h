// Seeded randomness kernel for the property-based verification suite.
//
// Every generator in src/testing draws from a PropRng, which is a thin
// distribution layer over crypto::CtrDrbg.  There is deliberately no
// constructor from wall-clock or std::random_device (determinism-ok —
// this line documents the ban itself): a property failure
// must be reproducible from the printed 64-bit seed alone, and the CI
// determinism guard (tools/check_test_determinism.py) enforces that no
// test reaches for ambient entropy.
#pragma once

#include <cmath>
#include <initializer_list>

#include "crypto/drbg.h"

namespace szsec::testing {

/// Deterministic random value source.  Identical seeds yield identical
/// draw sequences on every platform (CtrDrbg is AES-CTR, bit-exact).
class PropRng {
 public:
  explicit PropRng(uint64_t seed) : drbg_(seed) {}

  uint64_t next_u64() {
    uint8_t buf[8];
    drbg_.generate(std::span<uint8_t>(buf, sizeof(buf)));
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | buf[i];
    return v;
  }

  /// Uniform in [0, n); n must be > 0.  Modulo bias is irrelevant for
  /// test-case generation (n is always tiny against 2^64).
  uint64_t below(uint64_t n) { return next_u64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform real in [0, 1).
  double real01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// True with probability `p`.
  bool chance(double p) { return real01() < p; }

  /// Log-uniform real in [lo, hi] (both > 0) — the right distribution
  /// for error bounds, which matter on a log scale.
  double log_uniform(double lo, double hi) {
    return std::exp(std::log(lo) + real01() * (std::log(hi) - std::log(lo)));
  }

  /// Uniform pick from a short literal list.
  template <typename T>
  T pick(std::initializer_list<T> options) {
    return *(options.begin() +
             static_cast<std::ptrdiff_t>(below(options.size())));
  }

  Bytes bytes(size_t n) { return drbg_.generate(n); }

  /// A derived generator whose stream is independent of further draws
  /// from this one (used to give each sampled configuration its own
  /// reproducible sub-seed).
  uint64_t fork_seed() { return next_u64(); }

  crypto::CtrDrbg& drbg() { return drbg_; }

 private:
  crypto::CtrDrbg drbg_;
};

}  // namespace szsec::testing
