// Shared fuzz-replay entry points: one function per attack surface,
// called both by the libFuzzer harnesses under fuzz/ and by the
// corpus-replay test that walks tests/corpus/ on every plain ctest run.
// Keeping the bodies here (rather than in each harness) guarantees the
// corpus is replayed through *exactly* the code path the fuzzer
// explored when it minimized the entry.
//
// Contract for every replay_* function: arbitrary input bytes either
// decode successfully or raise szsec::Error — no crash, no hang, no
// out-of-bounds access (the sanitize tier runs these under ASan/UBSan).
#pragma once

#include <string>

#include "common/bytestream.h"

namespace szsec::testing {

/// Deterministic key of `n` bytes shared by the harnesses and the
/// seed-corpus generator, so checked-in corpus entries decrypt and the
/// fuzzers reach past the cipher into the deep decode path.
Bytes replay_key(size_t n);

/// Arbitrary bytes into the v2 container decoder (header peek, then a
/// full decode keyed per the header's cipher kind).
void replay_decode(BytesView input);

/// Framed input ([count u16][tree_len u16][tree][codewords]) into the
/// canonical-Huffman table deserializer and symbol decoder.
void replay_huffman(BytesView input);

/// Arbitrary bytes into the DEFLATE decoder; a successful inflate must
/// additionally survive a deflate/inflate round trip bit-identically.
void replay_zlite(BytesView input);

/// Arbitrary bytes into the v3 chunked-archive surfaces: strict index
/// parse, strict f32/f64 decode, and salvage decode.
void replay_chunked(BytesView input);

/// Dispatches to the replay function for a corpus family name
/// ("decode", "huffman", "zlite", "chunked"); unknown names run the
/// input through every surface.
void replay_family(const std::string& family, BytesView input);

}  // namespace szsec::testing
