// Differential oracle for SeekableReader: every ranged/ROI read must be
// bit-identical to the corresponding slice of a full strict decode, for
// both table sources (seek-table footer and prelude-index fallback).
#include <bit>
#include <sstream>

#include "archive/seekable.h"
#include "testing/oracle.h"

namespace szsec::testing {

namespace {

template <typename T>
uint64_t to_bits(T v) {
  if constexpr (sizeof(T) == 4) {
    return std::bit_cast<uint32_t>(v);
  } else {
    return std::bit_cast<uint64_t>(v);
  }
}

template <typename T>
std::vector<T> synthesize(const SampledConfig& cfg) {
  if constexpr (sizeof(T) == 4) {
    return synthesize_f32(cfg);
  } else {
    return synthesize_f64(cfg);
  }
}

/// One range differential: read [lo, hi) through the reader and compare
/// bit-for-bit against the full-decode slice.
template <typename T>
void check_range(std::vector<std::string>& out,
                 archive::SeekableReader& reader,
                 std::span<const T> full, uint64_t lo, uint64_t hi,
                 const char* label) {
  std::vector<T> got(static_cast<size_t>(hi - lo));
  try {
    reader.read_range(lo, hi, std::span<T>(got));
  } catch (const Error& e) {
    std::ostringstream os;
    os << label << ": read_range(" << lo << ", " << hi
       << ") threw: " << e.what();
    out.push_back(os.str());
    return;
  }
  for (size_t i = 0; i < got.size(); ++i) {
    if (to_bits(got[i]) != to_bits(full[static_cast<size_t>(lo) + i])) {
      std::ostringstream os;
      os << label << ": read_range(" << lo << ", " << hi
         << ") differs from the full-decode slice at offset " << i;
      out.push_back(os.str());
      return;
    }
  }
}

/// One ROI differential: gather the hyperslab from the full decode by
/// hand and compare against read_roi.
template <typename T>
void check_roi(std::vector<std::string>& out,
               archive::SeekableReader& reader, const Dims& dims,
               std::span<const T> full, std::span<const size_t> origin,
               std::span<const size_t> extent, const char* label) {
  const size_t r = dims.rank();
  uint64_t roi_elems = 1;
  for (size_t i = 0; i < r; ++i) roi_elems *= extent[i];
  std::vector<T> got(static_cast<size_t>(roi_elems));
  try {
    reader.read_roi(origin, extent, std::span<T>(got));
  } catch (const Error& e) {
    std::ostringstream os;
    os << label << ": read_roi threw: " << e.what();
    out.push_back(os.str());
    return;
  }
  // Reference gather straight off the full decode.
  size_t fstride[Dims::kMaxRank];
  fstride[r - 1] = 1;
  for (size_t i = r - 1; i-- > 0;) fstride[i] = fstride[i + 1] * dims[i + 1];
  size_t idx[Dims::kMaxRank] = {};
  for (size_t o = 0; o < got.size(); ++o) {
    size_t foff = 0;
    for (size_t a = 0; a < r; ++a) foff += (origin[a] + idx[a]) * fstride[a];
    if (to_bits(got[o]) != to_bits(full[foff])) {
      std::ostringstream os;
      os << label << ": read_roi differs from the full-decode gather at "
         << "ROI offset " << o;
      out.push_back(os.str());
      return;
    }
    for (size_t a = r; a-- > 0;) {
      if (++idx[a] < extent[a]) break;
      idx[a] = 0;
    }
  }
}

template <typename T>
std::vector<std::string> check_seekable_impl(const SampledConfig& cfg) {
  std::vector<std::string> out;
  const std::vector<T> field = synthesize<T>(cfg);

  archive::ChunkedConfig ccfg;
  ccfg.threads = cfg.threads;
  ccfg.chunks = cfg.chunks;

  // Two archives of the same field: footered (the fast open path) and
  // footer-less (the read_chunk_index fallback).  Same per-chunk DRBG
  // seed, so the frame bytes agree and only the table source differs.
  archive::ChunkedConfig no_footer = ccfg;
  no_footer.seek_table = false;
  crypto::CtrDrbg d1(cfg.seed + 7), d2(cfg.seed + 7);
  const archive::ChunkedCompressResult with_footer =
      archive::compress_chunked(std::span<const T>(field), cfg.dims,
                                cfg.params, cfg.scheme, BytesView(cfg.key),
                                cfg.spec, ccfg, &d1);
  const archive::ChunkedCompressResult without_footer =
      archive::compress_chunked(std::span<const T>(field), cfg.dims,
                                cfg.params, cfg.scheme, BytesView(cfg.key),
                                cfg.spec, no_footer, &d2);

  // The footer must be a pure suffix: stripping it reproduces the
  // footer-less bytes, so every pre-footer reader keeps working.
  const Bytes& fa = with_footer.archive;
  const Bytes& na = without_footer.archive;
  if (fa.size() <= na.size() ||
      !std::equal(na.begin(), na.end(), fa.begin())) {
    out.push_back("footered archive is not footer-less bytes + suffix");
    return out;
  }

  const std::vector<T> full = [&] {
    if constexpr (sizeof(T) == 4) {
      return archive::decompress_chunked_f32(BytesView(fa),
                                             BytesView(cfg.key), ccfg);
    } else {
      return archive::decompress_chunked_f64(BytesView(fa),
                                             BytesView(cfg.key), ccfg);
    }
  }();

  archive::SeekableOptions sopt;
  sopt.threads = cfg.threads;
  const auto footer_reader = archive::SeekableReader::open(
      BytesView(fa), BytesView(cfg.key), sopt);
  const auto index_reader = archive::SeekableReader::open(
      BytesView(na), BytesView(cfg.key), sopt);
  if (!footer_reader->from_footer()) {
    out.push_back("footered archive opened via the index fallback");
  }
  if (index_reader->from_footer()) {
    out.push_back("footer-less archive claims a footer");
  }

  const uint64_t n = cfg.dims.count();
  PropRng rng(cfg.seed ^ 0x5EEC4B1Eull);
  const auto one_reader = [&](archive::SeekableReader& reader,
                              const char* label) {
    if (reader.dims() != cfg.dims) {
      out.push_back(std::string(label) + ": table dims != field dims");
      return;
    }
    // Full field, first element, last element.
    check_range<T>(out, reader, std::span<const T>(full), 0, n, label);
    check_range<T>(out, reader, std::span<const T>(full), 0, 1, label);
    check_range<T>(out, reader, std::span<const T>(full), n - 1, n, label);
    // Chunk-straddling span around every chunk boundary.
    const auto& entries = reader.table().entries;
    for (size_t c = 1; c < entries.size(); ++c) {
      const uint64_t b = entries[c].elem_start;
      const uint64_t lo = b > 3 ? b - 3 : 0;
      const uint64_t hi = std::min<uint64_t>(n, b + 3);
      check_range<T>(out, reader, std::span<const T>(full), lo, hi, label);
    }
    // Random interior spans.
    for (int i = 0; i < 4; ++i) {
      const uint64_t lo = rng.below(n);
      const uint64_t hi = lo + 1 + rng.below(n - lo);
      check_range<T>(out, reader, std::span<const T>(full), lo, hi, label);
    }
    // Hyperslabs (rank >= 2): full-field ROI plus random boxes.
    const size_t r = cfg.dims.rank();
    if (r >= 2) {
      size_t origin[Dims::kMaxRank] = {};
      size_t extent[Dims::kMaxRank] = {};
      for (size_t a = 0; a < r; ++a) extent[a] = cfg.dims[a];
      check_roi<T>(out, reader, cfg.dims, std::span<const T>(full),
                   std::span<const size_t>(origin, r),
                   std::span<const size_t>(extent, r), label);
      for (int i = 0; i < 3; ++i) {
        for (size_t a = 0; a < r; ++a) {
          origin[a] = static_cast<size_t>(rng.below(cfg.dims[a]));
          extent[a] = 1 + static_cast<size_t>(
                              rng.below(cfg.dims[a] - origin[a]));
        }
        check_roi<T>(out, reader, cfg.dims, std::span<const T>(full),
                     std::span<const size_t>(origin, r),
                     std::span<const size_t>(extent, r), label);
      }
    }
  };
  one_reader(*footer_reader, "footer");
  one_reader(*index_reader, "index-fallback");

  // A small read must not touch the whole archive (the point of the
  // subsystem).  Only meaningful with several chunks.
  if (footer_reader->chunk_count() >= 3) {
    const auto fresh = archive::SeekableReader::open(
        BytesView(fa), BytesView(cfg.key), sopt);
    std::vector<T> one(1);
    fresh->read_range(0, 1, std::span<T>(one));
    if (fresh->bytes_read() >= fa.size()) {
      out.push_back(
          "single-element read touched the entire archive");
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> check_seekable(const SampledConfig& cfg) {
  try {
    return cfg.dtype == sz::DType::kFloat32
               ? check_seekable_impl<float>(cfg)
               : check_seekable_impl<double>(cfg);
  } catch (const std::exception& e) {
    return {std::string("unexpected exception: ") + e.what()};
  }
}

}  // namespace szsec::testing
