#include "testing/generator.h"

#include <bit>
#include <sstream>

#include "crypto/cipher.h"
#include "data/fieldgen.h"

namespace szsec::testing {

const char* field_kind_name(FieldKind k) {
  switch (k) {
    case FieldKind::kConstant:
      return "constant";
    case FieldKind::kRamp:
      return "ramp";
    case FieldKind::kSmooth:
      return "smooth";
    case FieldKind::kTurbulent:
      return "turbulent";
    case FieldKind::kNonFiniteLaced:
      return "nonfinite";
    case FieldKind::kTiny:
      return "tiny";
  }
  return "?";
}

namespace {

/// Extents chosen to hit boundary structure: non-power-of-two sizes,
/// extents below/at/above the prediction block side, and a 1-extent
/// degenerate axis.  Kept small so one oracle run over hundreds of
/// samples stays in CI budget.
size_t sample_extent(PropRng& rng) {
  return static_cast<size_t>(
      rng.pick<int>({1, 2, 3, 5, 6, 7, 9, 11, 13, 17, 24, 31}));
}

Dims sample_dims(PropRng& rng, FieldKind kind) {
  if (kind == FieldKind::kTiny) {
    return Dims{static_cast<size_t>(rng.range(1, 8))};
  }
  const int rank = static_cast<int>(rng.range(1, 4));
  size_t e[4];
  // Cap total elements so a whole suite of samples stays fast; resample
  // any axis that would push the field past the budget.
  const size_t budget = 20000;
  size_t total = 1;
  for (int i = 0; i < rank; ++i) {
    size_t x = sample_extent(rng);
    // x == 1 always fits (total <= budget is a loop invariant), so
    // halving to 1 terminates.
    while (x > 1 && total * x > budget) x /= 2;
    e[i] = x;
    total *= x;
  }
  switch (rank) {
    case 1:
      return Dims{e[0]};
    case 2:
      return Dims{e[0], e[1]};
    case 3:
      return Dims{e[0], e[1], e[2]};
    default:
      return Dims{e[0], e[1], e[2], e[3]};
  }
}

}  // namespace

SampledConfig sample_config(PropRng& rng) {
  SampledConfig c;
  c.seed = rng.fork_seed();

  c.field = rng.pick<FieldKind>(
      {FieldKind::kConstant, FieldKind::kRamp, FieldKind::kSmooth,
       FieldKind::kSmooth, FieldKind::kTurbulent, FieldKind::kNonFiniteLaced,
       FieldKind::kTiny});
  c.dims = sample_dims(rng, c.field);
  c.dtype = rng.chance(0.5) ? sz::DType::kFloat32 : sz::DType::kFloat64;

  c.scheme = rng.pick<core::Scheme>(
      {core::Scheme::kNone, core::Scheme::kCmprEncr, core::Scheme::kEncrQuant,
       core::Scheme::kEncrHuffman});
  if (c.scheme != core::Scheme::kNone) {
    c.spec.kind = rng.pick<crypto::CipherKind>(
        {crypto::CipherKind::kAes128, crypto::CipherKind::kAes128,
         crypto::CipherKind::kAes192, crypto::CipherKind::kAes256,
         crypto::CipherKind::kDes, crypto::CipherKind::kTripleDes,
         crypto::CipherKind::kChaCha20});
    c.spec.mode = rng.pick<crypto::Mode>(
        {crypto::Mode::kCbc, crypto::Mode::kCbc, crypto::Mode::kCtr,
         crypto::Mode::kCtr, crypto::Mode::kEcb});
    c.spec.authenticate = rng.chance(0.25);
    c.key = rng.bytes(crypto::cipher_key_size(c.spec.kind));
  }

  c.params.abs_error_bound = rng.log_uniform(1e-6, 1e-1);
  // REL mode resolves against the data's range at compression time; an
  // infinite range (Inf-laced fields) makes the bound ill-defined, so
  // the sampler only pairs kRel with finite field kinds.
  if (c.field != FieldKind::kNonFiniteLaced && rng.chance(0.2)) {
    c.params.eb_mode = sz::ErrorBoundMode::kRel;
    c.params.rel_error_bound = rng.log_uniform(1e-5, 1e-2);
  }
  c.params.quant_bins = static_cast<uint32_t>(
      rng.pick<int>({16, 64, 1024, 65536}));
  c.params.block_side = static_cast<uint32_t>(rng.pick<int>({2, 4, 6, 8}));
  c.params.predictor = rng.chance(0.3) ? sz::Predictor::kInterpolation
                                       : sz::Predictor::kBlockHybrid;
  c.params.use_regression = rng.chance(0.7);
  c.params.use_mean_predictor = rng.chance(0.7);
  c.params.lossless_level = rng.pick<zlite::Level>(
      {zlite::Level::kStored, zlite::Level::kFast, zlite::Level::kDefault});

  c.chunks = static_cast<size_t>(
      rng.range(1, static_cast<int64_t>(std::min<size_t>(c.dims[0], 5))));
  c.threads = static_cast<unsigned>(rng.range(1, 4));
  return c;
}

namespace {

/// Field synthesis shared by both dtypes: the f64 variant adds sub-eb
/// jitter below f32 precision so double-specific mantissa handling is
/// actually exercised rather than round-tripping f32-representable
/// values.
std::vector<float> synthesize_base(const SampledConfig& cfg) {
  PropRng rng(cfg.seed);
  const size_t n = cfg.dims.count();
  std::vector<float> f;
  switch (cfg.field) {
    case FieldKind::kConstant: {
      const float v = static_cast<float>(
          rng.pick<double>({0.0, 1.5, -7.25e5, 1e-20}));
      f.assign(n, v);
      break;
    }
    case FieldKind::kRamp: {
      const double step =
          cfg.params.abs_error_bound * rng.pick<double>({0.1, 1.0, 10.0});
      const double base = rng.real01() * 100.0 - 50.0;
      f.resize(n);
      for (size_t i = 0; i < n; ++i) {
        f[i] = static_cast<float>(base + step * static_cast<double>(i));
      }
      break;
    }
    case FieldKind::kSmooth:
    case FieldKind::kNonFiniteLaced:
      f = data::smooth_noise(cfg.dims, cfg.seed, 2);
      break;
    case FieldKind::kTurbulent:
    case FieldKind::kTiny:
      f = data::white_noise(cfg.dims, cfg.seed);
      break;
  }
  // Vary the dynamic range (error bounds interact with magnitude).
  const double scale = rng.pick<double>({1.0, 1.0, 1e3, 1e-3});
  if (scale != 1.0) {
    for (float& v : f) v = static_cast<float>(v * scale);
  }
  if (cfg.field == FieldKind::kNonFiniteLaced) {
    const size_t lace = 1 + rng.below(std::max<size_t>(n / 16, 1));
    for (size_t i = 0; i < lace; ++i) {
      const size_t at = rng.below(n);
      f[at] = rng.pick<float>(
          {std::numeric_limits<float>::quiet_NaN(),
           std::numeric_limits<float>::infinity(),
           -std::numeric_limits<float>::infinity()});
    }
  }
  return f;
}

}  // namespace

std::vector<float> synthesize_f32(const SampledConfig& cfg) {
  return synthesize_base(cfg);
}

std::vector<double> synthesize_f64(const SampledConfig& cfg) {
  const std::vector<float> base = synthesize_base(cfg);
  PropRng rng(cfg.seed ^ 0x9E3779B97F4A7C15ull);
  std::vector<double> f(base.size());
  const double jitter = cfg.params.abs_error_bound * 1e-4;
  for (size_t i = 0; i < base.size(); ++i) {
    const double v = static_cast<double>(base[i]);
    f[i] = std::isfinite(v) ? v + (rng.real01() - 0.5) * jitter : v;
  }
  return f;
}

std::string SampledConfig::describe() const {
  std::ostringstream os;
  os << "seed=0x" << std::hex << seed << std::dec
     << " scheme=" << core::scheme_name(scheme)
     << " dtype=f" << (dtype == sz::DType::kFloat32 ? 32 : 64)
     << " field=" << field_kind_name(field) << " dims=" << dims.to_string();
  if (scheme != core::Scheme::kNone) {
    os << " cipher=" << crypto::cipher_name(spec.kind) << "/"
       << crypto::mode_name(spec.mode) << " auth=" << spec.authenticate;
  }
  os << " eb=" << params.abs_error_bound;
  if (params.eb_mode == sz::ErrorBoundMode::kRel) {
    os << " rel=" << params.rel_error_bound;
  }
  os << " bins=" << params.quant_bins << " side=" << params.block_side
     << " pred="
     << (params.predictor == sz::Predictor::kInterpolation ? "interp"
                                                           : "hybrid")
     << " reg=" << params.use_regression
     << " mean=" << params.use_mean_predictor
     << " level=" << static_cast<int>(params.lossless_level)
     << " chunks=" << chunks << " threads=" << threads;
  return os.str();
}

}  // namespace szsec::testing
