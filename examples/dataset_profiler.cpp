// Dataset profiler: answers "what error bound do I need?" before
// compressing — the workflow a domain scientist runs once per new field.
//
// For each synthetic dataset (or a real .bin passed on the command line)
// it sweeps error bounds, printing predictability, code entropy, the
// entropy-based CR estimate, and the actual measured CR, then asks
// suggest_error_bound() for the bound that reaches a target ratio.
//
//   ./dataset_profiler                         # profile the surrogates
//   ./dataset_profiler field.bin Z,Y,X 10      # profile a real field
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/secure_compressor.h"
#include "data/datasets.h"
#include "data/io.h"
#include "sz/analysis.h"

namespace {

using namespace szsec;

void profile_field(const std::string& name, std::span<const float> values,
                   const Dims& dims, double target_cr) {
  std::printf("\n=== %s (%s, %.2f MB) ===\n", name.c_str(),
              dims.to_string().c_str(), values.size_bytes() / 1e6);
  std::printf("%10s %14s %14s %12s %12s\n", "eb", "predictable %",
              "entropy b/sym", "est. CR", "actual CR");
  for (double eb : {1e-7, 1e-6, 1e-5, 1e-4, 1e-3}) {
    sz::Params params;
    params.abs_error_bound = eb;
    const sz::ProfileRow row = sz::profile(values, dims, params);
    const core::SecureCompressor c(params, core::Scheme::kNone);
    const double actual =
        c.compress(values, dims).stats.compression_ratio();
    std::printf("%10.0e %14.2f %14.3f %12.2f %12.2f\n", eb,
                100.0 * row.analysis.predictable_fraction,
                row.analysis.code_entropy_bits, row.estimated_cr, actual);
  }
  const double suggested =
      sz::suggest_error_bound(values, dims, target_cr);
  sz::Params params;
  params.abs_error_bound = suggested;
  const core::SecureCompressor c(params, core::Scheme::kNone);
  const double achieved =
      c.compress(values, dims).stats.compression_ratio();
  std::printf("target CR %.0fx -> suggested eb %.3g (achieves %.2fx)\n",
              target_cr, suggested, achieved);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3) {
    const std::vector<float> values = data::load_f32(argv[1]);
    std::vector<size_t> extents;
    std::stringstream ss(argv[2]);
    std::string tok;
    while (std::getline(ss, tok, ',')) extents.push_back(std::stoull(tok));
    Dims dims;
    switch (extents.size()) {
      case 1:
        dims = Dims{extents[0]};
        break;
      case 2:
        dims = Dims{extents[0], extents[1]};
        break;
      case 3:
        dims = Dims{extents[0], extents[1], extents[2]};
        break;
      default:
        dims = Dims{extents[0], extents[1], extents[2], extents[3]};
    }
    const double target = argc > 3 ? std::atof(argv[3]) : 10.0;
    profile_field(argv[1], std::span<const float>(values), dims, target);
    return 0;
  }
  for (const std::string& name : {"CLOUDf48", "Nyx", "Q2"}) {
    const data::Dataset d = data::make_dataset(name, data::Scale::kTiny);
    profile_field(name, std::span<const float>(d.values), d.dims, 10.0);
  }
  return 0;
}
