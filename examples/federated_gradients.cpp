// Federated-learning gradient transmission (paper Section III-C): worker
// nodes ship gradient updates to an aggregator.  Gradients tolerate small
// perturbations, so error-bounded lossy compression shrinks the update;
// in-pipeline encryption keeps the model private from the transport.
//
// This example simulates a few federated rounds: each worker compresses
// its gradient with Encr-Huffman, the "network" delivers it, and the
// aggregator decrypts, decompresses, and averages.  It reports bytes on
// the wire vs raw, verifies the aggregate stays within the accumulated
// bound, and shows that a malicious in-flight modification is rejected
// rather than silently skewing the model.
//
//   ./federated_gradients
#include <cmath>
#include <cstdio>
#include <random>

#include "common/stats.h"
#include "core/secure_compressor.h"

namespace {

using namespace szsec;

// A gradient that looks like a real dense-layer gradient: heavy-tailed,
// mostly small magnitudes, layer-correlated scale.
std::vector<float> make_gradient(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> noise(0.0f, 1.0f);
  std::vector<float> g(n);
  float layer_scale = 0.1f;
  for (size_t i = 0; i < n; ++i) {
    if (i % 4096 == 0) {
      layer_scale = 0.01f + 0.2f * std::abs(noise(rng));
    }
    g[i] = layer_scale * noise(rng) * 0.01f;
  }
  return g;
}

}  // namespace

int main() {
  constexpr size_t kParams = 1 << 18;   // 256k-parameter model slice
  constexpr int kWorkers = 4;
  constexpr int kRounds = 3;
  constexpr double kEb = 1e-6;          // gradient tolerance

  const Bytes session_key = crypto::global_drbg().generate(16);
  sz::Params params;
  params.abs_error_bound = kEb;
  const core::SecureCompressor channel(params, core::Scheme::kEncrHuffman,
                                       BytesView(session_key));

  const Dims dims{kParams};
  size_t raw_bytes = 0, wire_bytes = 0;
  double worst_aggregate_err = 0;

  for (int round = 0; round < kRounds; ++round) {
    std::vector<double> aggregate(kParams, 0.0);
    std::vector<double> exact(kParams, 0.0);
    for (int w = 0; w < kWorkers; ++w) {
      const std::vector<float> grad =
          make_gradient(kParams, round * 131 + w);
      // Worker side: compress + encrypt.
      const core::CompressResult msg =
          channel.compress(std::span<const float>(grad), dims);
      raw_bytes += grad.size() * 4;
      wire_bytes += msg.container.size();
      // Aggregator side: decrypt + decompress + accumulate.
      const std::vector<float> received =
          channel.decompress_f32(BytesView(msg.container));
      for (size_t i = 0; i < kParams; ++i) {
        aggregate[i] += received[i];
        exact[i] += grad[i];
      }
    }
    // Aggregate error is bounded by workers * eb.
    double max_err = 0;
    for (size_t i = 0; i < kParams; ++i) {
      max_err = std::max(max_err, std::abs(aggregate[i] - exact[i]));
    }
    worst_aggregate_err = std::max(worst_aggregate_err, max_err);
    std::printf("round %d: aggregate max err %.3g (bound %d*eb = %.3g)\n",
                round, max_err, kWorkers, kWorkers * kEb);
  }

  std::printf("\nwire traffic: %.2f MB raw -> %.2f MB sent (%.2fx saved)\n",
              raw_bytes / 1e6, wire_bytes / 1e6,
              static_cast<double>(raw_bytes) / wire_bytes);

  // A man-in-the-middle flips bits in a gradient message.
  std::printf("\nadversarial check: tampered gradient message ... ");
  const std::vector<float> grad = make_gradient(kParams, 999);
  core::CompressResult msg =
      channel.compress(std::span<const float>(grad), dims);
  msg.container[msg.container.size() / 3] ^= 0x80;
  try {
    (void)channel.decompress_f32(BytesView(msg.container));
    std::printf("ACCEPTED (bug!)\n");
    return 1;
  } catch (const Error&) {
    std::printf("rejected, model update dropped\n");
  }

  const bool ok = worst_aggregate_err <= kWorkers * kEb * (1 + 1e-9);
  std::printf("\nfederated simulation %s\n", ok ? "PASSED" : "FAILED");
  return ok ? 0 : 1;
}
