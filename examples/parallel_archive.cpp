// Slab-parallel archiving: compress a large snapshot across worker
// threads (the production-deployment layer on top of the paper's
// single-threaded pipeline).  Shows the thread/slab knobs, the archive
// format, and the slab-count vs compression-ratio trade-off.
//
//   ./parallel_archive [threads]
#include <cstdio>
#include <cstdlib>

#include "common/stats.h"
#include "common/timer.h"
#include "data/datasets.h"
#include "parallel/slab.h"

int main(int argc, char** argv) {
  using namespace szsec;

  const unsigned threads =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 0;
  const data::Dataset d = data::make_height(data::Scale::kBench);
  const Bytes key = crypto::global_drbg().generate(16);
  sz::Params params;
  params.abs_error_bound = 1e-4;

  std::printf("field: %s %s (%.1f MB), scheme Encr-Huffman\n",
              d.name.c_str(), d.dims.to_string().c_str(),
              d.bytes() / 1e6);
  std::printf("%8s %10s %12s %12s\n", "slabs", "CR", "comp MB/s",
              "restore ok");

  for (size_t slabs : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    parallel::SlabConfig config;
    config.threads = threads;
    config.slabs = slabs;

    WallTimer t;
    const parallel::SlabCompressResult r = parallel::compress_slabs(
        std::span<const float>(d.values), d.dims, params,
        core::Scheme::kEncrHuffman, BytesView(key), {}, config);
    const double secs = t.elapsed_s();

    const std::vector<float> restored = parallel::decompress_slabs_f32(
        BytesView(r.archive), BytesView(key), config);
    const bool ok = within_abs_bound(std::span<const float>(d.values),
                                     std::span<const float>(restored),
                                     params.abs_error_bound);
    std::printf("%8zu %10.3f %12.2f %12s\n", r.slab_count,
                r.stats.compression_ratio(), d.bytes() / 1e6 / secs,
                ok ? "yes" : "NO");
    if (!ok) return 1;
  }
  std::printf(
      "\nNote: slabs are independent containers, so CR dips slightly as\n"
      "the count grows (per-slab Huffman trees, broken cross-slab\n"
      "prediction) while wall time scales with available cores.\n");
  return 0;
}
