// Quickstart: compress a scientific field with error-bounded lossy
// compression + in-pipeline encryption (Encr-Huffman, the paper's
// recommended light-weight scheme), then decrypt + decompress and verify
// the error bound.
//
//   ./quickstart
#include <cstdio>

#include "common/stats.h"
#include "core/secure_compressor.h"
#include "data/datasets.h"

int main() {
  using namespace szsec;

  // 1. Grab a field to compress: the Hurricane-Isabel-like cloud surrogate
  //    (swap in data::load_f32("CLOUDf48.bin") for real SDRBench data).
  const data::Dataset field = data::make_cloudf48(data::Scale::kTiny);
  std::printf("dataset: %s %s (%zu values, %.2f MB)\n", field.name.c_str(),
              field.dims.to_string().c_str(), field.values.size(),
              field.bytes() / 1e6);

  // 2. Configure: absolute error bound 1e-4, AES-128-CBC, encrypt only
  //    the Huffman tree (Encr-Huffman).
  sz::Params params;
  params.abs_error_bound = 1e-4;
  const Bytes key = crypto::global_drbg().generate(16);  // session key
  const core::SecureCompressor compressor(
      params, core::Scheme::kEncrHuffman, BytesView(key));

  // 3. Compress + encrypt in one call.
  const core::CompressResult result =
      compressor.compress(std::span<const float>(field.values), field.dims);
  std::printf("compressed: %zu bytes (ratio %.2fx), encrypted %llu bytes\n",
              result.container.size(), result.stats.compression_ratio(),
              static_cast<unsigned long long>(result.stats.encrypted_bytes));

  // 4. Decrypt + decompress.
  const std::vector<float> restored =
      compressor.decompress_f32(BytesView(result.container));

  // 5. Verify the error bound holds for every element.
  const ErrorStats err = compute_error_stats(
      std::span<const float>(field.values), std::span<const float>(restored));
  std::printf("max |err| = %.3g (bound %.3g)  PSNR = %.1f dB\n",
              err.max_abs_err, params.abs_error_bound, err.psnr_db);
  const bool ok = within_abs_bound(std::span<const float>(field.values),
                                   std::span<const float>(restored),
                                   params.abs_error_bound);
  std::printf("error bound %s\n", ok ? "RESPECTED" : "VIOLATED");
  return ok ? 0 : 1;
}
