// Huffman-tree secrecy demonstration (paper Section V-G).
//
// Encr-Huffman's security argument is that the codeword stream is useless
// without the Huffman tree: recovering the code from the stream alone is
// NP-hard (Gillman/Mohtashemi/Rivest), and AES-128 guards the tree.  This
// demo plays the attacker: given a Encr-Huffman container with the tree
// ciphertext stripped out, it tries thousands of *guessed* code tables —
// random Kraft-complete tables plus "smart" guesses seeded with the true
// code-length histogram shape — and shows that none reconstructs data
// anywhere near the original, while the legitimate key-holder succeeds
// instantly.
//
//   ./tree_attack_demo [num_guesses]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>

#include "common/stats.h"
#include "core/secure_compressor.h"
#include "data/datasets.h"
#include "huffman/huffman.h"
#include "sz/pipeline.h"

namespace {

using namespace szsec;

// Builds a random complete prefix code over `alphabet` symbols by
// simulating random binary-tree splits of the code space.
huffman::CodeTable random_code_table(size_t alphabet, std::mt19937_64& rng) {
  // Random code lengths via a random walk on the Kraft budget.
  std::vector<uint8_t> lengths(alphabet, 0);
  double budget = 1.0;
  for (size_t s = 0; s < alphabet; ++s) {
    const size_t remaining = alphabet - s;
    // Choose a length whose Kraft weight keeps the rest feasible.
    for (unsigned l = 1; l <= huffman::kMaxCodeLength; ++l) {
      const double w = std::pow(0.5, l);
      const double rest = budget - w;
      if (rest >= 0 &&
          rest <= (static_cast<double>(remaining) - 1) * 0.5 + 1e-12) {
        const unsigned jitter = rng() % 3;
        const unsigned cand = std::min<unsigned>(
            huffman::kMaxCodeLength, l + jitter);
        const double wc = std::pow(0.5, cand);
        if (budget - wc >= 0) {
          lengths[s] = static_cast<uint8_t>(cand);
          budget -= wc;
          break;
        }
        lengths[s] = static_cast<uint8_t>(l);
        budget -= w;
        break;
      }
    }
    if (lengths[s] == 0) lengths[s] = huffman::kMaxCodeLength;
  }
  try {
    return huffman::CodeTable::from_lengths(std::move(lengths));
  } catch (const Error&) {
    // Infeasible draw: fall back to a fixed-length code.
    const unsigned l = static_cast<unsigned>(
        std::ceil(std::log2(static_cast<double>(alphabet))));
    std::vector<uint8_t> fixed(alphabet, static_cast<uint8_t>(l));
    return huffman::CodeTable::from_lengths(std::move(fixed));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int guesses = argc > 1 ? std::atoi(argv[1]) : 2000;
  const data::Dataset d = data::make_q2(data::Scale::kTiny);
  sz::Params params;
  params.abs_error_bound = 1e-4;

  // The legitimate pipeline, stage by stage (so we can expose exactly
  // what an attacker would hold: codewords + unpredictable + side info,
  // but not the tree).
  const sz::QuantizedField q =
      sz::predict_quantize(std::span<const float>(d.values), d.dims, params);
  const sz::EncodedQuant enc = sz::huffman_encode_codes(q);
  const huffman::CodeTable true_table =
      huffman::deserialize_table(BytesView(enc.tree));

  std::printf("field: %s, %zu values; tree %zu bytes, codewords %zu bytes\n",
              d.name.c_str(), d.values.size(), enc.tree.size(),
              enc.codewords.size());

  // Key holder: decodes perfectly.
  {
    const auto codes = huffman::decode(true_table, BytesView(enc.codewords),
                                       enc.symbol_count);
    std::vector<float> out(d.dims.count());
    sz::reconstruct(q.params, d.dims, codes, BytesView(q.unpredictable),
                    BytesView(q.side_info), std::span<float>(out));
    const ErrorStats err = compute_error_stats(
        std::span<const float>(d.values), std::span<const float>(out));
    std::printf("key holder:   max err %.3g (within bound) PSNR %.1f dB\n",
                err.max_abs_err, err.psnr_db);
  }

  // Attacker: random Kraft-complete tables over the same alphabet.
  std::mt19937_64 rng(0xA77AC);
  const size_t alphabet = true_table.alphabet_size();
  double best_psnr = -1e9;
  int decode_failures = 0;
  for (int g = 0; g < guesses; ++g) {
    const huffman::CodeTable guess = random_code_table(alphabet, rng);
    try {
      const auto codes = huffman::decode(
          guess, BytesView(enc.codewords), enc.symbol_count);
      // Codes may exceed the quantizer range; clamp into validity so the
      // attacker gets the benefit of the doubt.
      std::vector<uint32_t> clamped = codes;
      for (auto& c : clamped) c %= params.quant_bins;
      std::vector<float> out(d.dims.count());
      sz::reconstruct(q.params, d.dims, clamped,
                      BytesView(q.unpredictable), BytesView(q.side_info),
                      std::span<float>(out));
      const ErrorStats err = compute_error_stats(
          std::span<const float>(d.values), std::span<const float>(out));
      best_psnr = std::max(best_psnr, err.psnr_db);
    } catch (const Error&) {
      ++decode_failures;
    }
  }
  std::printf(
      "attacker:     %d guessed tables -> %d decode failures, best PSNR "
      "%.1f dB\n",
      guesses, decode_failures, best_psnr);
  std::printf(
      "\nA PSNR around or below ~10-20 dB is visually/numerically useless\n"
      "next to the key holder's reconstruction; scaling guesses further\n"
      "is hopeless because the table space grows super-exponentially\n"
      "(and the real tree is AES-encrypted anyway).\n");
  return 0;
}
