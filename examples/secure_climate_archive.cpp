// Secure climate archive: the paper's HPC scenario (Section III-C).
//
// An atmospheric simulation produces several fields per snapshot; the
// archive pipeline compresses each with an appropriate error bound and
// encrypts in-pipeline so data at rest on shared parallel storage stays
// confidential.  This example archives a snapshot to .szs files, then
// plays the "restore" side: verifies integrity, decrypts, decompresses,
// and checks every field's bound.  It also demonstrates tamper detection
// on a corrupted archive member.
//
//   ./secure_climate_archive [output_dir]
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/stats.h"
#include "core/secure_compressor.h"
#include "data/datasets.h"

namespace {

using namespace szsec;

struct ArchiveEntry {
  std::string field;
  double error_bound;
};

void write_file(const std::string& path, BytesView data) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  Bytes data(static_cast<size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "climate_archive";
  std::filesystem::create_directories(dir);

  // Per-field error bounds chosen the way a domain scientist would:
  // tighter for temperature (used in downstream derivatives), looser for
  // the sparse hydrometeor fields.
  const std::vector<ArchiveEntry> entries = {
      {"T", 1e-4}, {"Q2", 1e-6}, {"CLOUDf48", 1e-5}, {"Height", 1e-4}};

  // One archive key, generated fresh (in production: from a KMS).
  const Bytes key = crypto::global_drbg().generate(16);

  std::printf("=== Archiving snapshot to %s/ (Encr-Huffman, AES-128-CBC)\n",
              dir.c_str());
  size_t raw_total = 0, stored_total = 0;
  for (const ArchiveEntry& e : entries) {
    const data::Dataset d = data::make_dataset(e.field, data::Scale::kTiny);
    sz::Params params;
    params.abs_error_bound = e.error_bound;
    const core::SecureCompressor c(params, core::Scheme::kEncrHuffman,
                                   BytesView(key));
    const core::CompressResult r =
        c.compress(std::span<const float>(d.values), d.dims);
    const std::string path = dir + "/" + e.field + ".szs";
    write_file(path, BytesView(r.container));
    raw_total += d.bytes();
    stored_total += r.container.size();
    std::printf("  %-10s eb=%-8.0e %8.2f KB -> %8.2f KB (%.1fx)\n",
                e.field.c_str(), e.error_bound, d.bytes() / 1024.0,
                r.container.size() / 1024.0, r.stats.compression_ratio());
  }
  std::printf("  total: %.2f MB -> %.2f MB (%.1fx)\n", raw_total / 1e6,
              stored_total / 1e6,
              static_cast<double>(raw_total) / stored_total);

  std::printf("\n=== Restoring and verifying\n");
  bool all_ok = true;
  for (const ArchiveEntry& e : entries) {
    const Bytes container = read_file(dir + "/" + e.field + ".szs");
    // Header is plaintext: the restore tool can route by scheme/dims
    // without the key.
    const core::Header h = core::peek_header(BytesView(container));
    sz::Params params;  // the compressor params come from the header
    const core::SecureCompressor c(params, h.scheme, BytesView(key));
    const std::vector<float> restored =
        c.decompress_f32(BytesView(container));
    const data::Dataset original =
        data::make_dataset(e.field, data::Scale::kTiny);
    const bool ok =
        within_abs_bound(std::span<const float>(original.values),
                         std::span<const float>(restored),
                         h.params.abs_error_bound);
    all_ok = all_ok && ok;
    std::printf("  %-10s %s (dims %s, eb %.0e)\n", e.field.c_str(),
                ok ? "OK" : "BOUND VIOLATION",
                h.dims.to_string().c_str(), h.params.abs_error_bound);
  }

  std::printf("\n=== Tamper check: flipping one byte of T.szs\n");
  {
    Bytes tampered = read_file(dir + "/T.szs");
    tampered[tampered.size() / 2] ^= 0x01;
    const core::SecureCompressor c(sz::Params{}, core::Scheme::kEncrHuffman,
                                   BytesView(key));
    try {
      (void)c.decompress_f32(BytesView(tampered));
      std::printf("  tampering went UNDETECTED (bug!)\n");
      all_ok = false;
    } catch (const Error& e) {
      std::printf("  tampering detected as expected: %s\n", e.what());
    }
  }
  std::printf("\narchive restore %s\n", all_ok ? "PASSED" : "FAILED");
  return all_ok ? 0 : 1;
}
