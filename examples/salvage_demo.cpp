// Salvage decoding walkthrough: compress a field into the fault-tolerant
// chunked archive (container v3), damage it three ways — bit flip, chunk
// drop, mid-archive truncation — and show what decompress_salvage gets
// back.  The strict decoder refuses every damaged variant; the salvage
// decoder recovers all intact chunks and reports the rest.
//
//   ./salvage_demo
#include <cstdio>

#include "archive/chunked.h"
#include "common/stats.h"
#include "data/datasets.h"

int main() {
  using namespace szsec;

  const data::Dataset d = data::make_height(data::Scale::kTiny);
  const Bytes key = crypto::global_drbg().generate(16);
  sz::Params params;
  params.abs_error_bound = 1e-4;

  archive::ChunkedConfig config;
  config.chunks = 6;
  const archive::ChunkedCompressResult r = archive::compress_chunked(
      std::span<const float>(d.values), d.dims, params,
      core::Scheme::kEncrHuffman, BytesView(key), {}, config);
  const archive::ChunkIndex index =
      archive::read_chunk_index(BytesView(r.archive));
  std::printf("field %s %s -> %zu-chunk archive, %zu bytes (CR %.2f)\n\n",
              d.name.c_str(), d.dims.to_string().c_str(), r.chunk_count,
              r.archive.size(), r.stats.compression_ratio());

  struct Damage {
    const char* name;
    Bytes archive;
  };
  // Flip one payload bit in chunk 2, delete chunk 4 entirely, and cut
  // the archive at the start of chunk 5's frame.
  const archive::ChunkEntry& flip_at = index.entries[2];
  const archive::ChunkEntry& drop_at = index.entries[4];
  Damage cases[] = {
      {"bit flip in chunk 2", r.archive},
      {"chunk 4 dropped", r.archive},
      {"truncated before chunk 5", r.archive},
  };
  cases[0].archive[static_cast<size_t>(flip_at.offset + flip_at.frame_len / 2)] ^= 0x10;
  cases[1].archive.erase(
      cases[1].archive.begin() + static_cast<std::ptrdiff_t>(drop_at.offset),
      cases[1].archive.begin() +
          static_cast<std::ptrdiff_t>(drop_at.offset + drop_at.frame_len));
  cases[2].archive.resize(static_cast<size_t>(index.entries[5].offset));

  for (const Damage& dmg : cases) {
    std::printf("--- %s ---\n", dmg.name);
    try {
      (void)archive::decompress_chunked_f32(BytesView(dmg.archive),
                                            BytesView(key));
      std::printf("strict decode: unexpectedly succeeded?!\n");
    } catch (const Error& e) {
      std::printf("strict decode: rejected (%s)\n", e.what());
    }

    const archive::SalvageResult s =
        archive::decompress_salvage(BytesView(dmg.archive), BytesView(key));
    std::printf("salvage: %llu/%llu chunks, %.1f%% of elements, "
                "%llu bytes skipped\n",
                static_cast<unsigned long long>(s.report.chunks_recovered),
                static_cast<unsigned long long>(s.report.chunks_expected),
                100.0 * s.report.recovered_fraction(),
                static_cast<unsigned long long>(s.report.bytes_skipped));
    for (const archive::ChunkReport& c : s.report.chunks) {
      std::printf("  chunk %llu rows [%llu, %llu): %-9s %s\n",
                  static_cast<unsigned long long>(c.chunk_id),
                  static_cast<unsigned long long>(c.row_start),
                  static_cast<unsigned long long>(c.row_start + c.row_extent),
                  archive::to_string(c.status), c.detail.c_str());
    }

    // Verify the claim: recovered chunks are within the error bound.
    const size_t plane = d.dims.count() / d.dims[0];
    bool all_ok = true;
    for (const archive::ChunkReport& c : s.report.chunks) {
      if (c.status != archive::ChunkStatus::kOk &&
          c.status != archive::ChunkStatus::kRelocated) {
        continue;
      }
      const size_t begin = static_cast<size_t>(c.row_start) * plane;
      const size_t count = static_cast<size_t>(c.row_extent) * plane;
      all_ok = all_ok &&
               within_abs_bound(
                   std::span<const float>(d.values).subspan(begin, count),
                   std::span<const float>(s.f32).subspan(begin, count),
                   params.abs_error_bound);
    }
    std::printf("recovered chunks within error bound: %s\n\n",
                all_ok ? "yes" : "NO");
    if (!all_ok) return 1;
  }
  std::printf("Lost regions above were filled with the mean of the\n"
              "recovered elements (SalvageOptions::fill; zeros and NaN\n"
              "are available for masking workflows).\n");
  return 0;
}
