// szsec_cli: a small command-line front end for the library, in the
// spirit of the `sz` executable.
//
//   szsec_cli compress   <in.bin> <out.szs> --dims Z,Y,X --eb 1e-4
//             [--scheme none|cmpr-encr|encr-quant|encr-huffman]
//             [--key <hex 16/24/32 bytes> | --password <string>]
//             [--mode cbc|ctr] [--chunks N] [--threads N]
//   szsec_cli decompress <in.szs> <out.bin> [--key <hex> | --password <s>]
//             [--threads N]
//   szsec_cli info       <in.szs>
//
// --chunks N writes a fault-tolerant v3 chunked archive (N independent
// chunks) instead of a single v2 container; --threads N fans the
// per-chunk codec work across N workers (chunked archives only — output
// bytes are identical for every thread count).  decompress and info
// detect the container kind from the magic.
//
// --password derives an AES-128 key via PBKDF2-HMAC-SHA256 (100k
// iterations, fixed application salt) — convenient for interactive use;
// supply a random --key for production.
//
// Input .bin files are raw little-endian float32 (SDRBench layout).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "archive/chunked.h"
#include "common/bytestream.h"
#include "common/hex.h"
#include "core/secure_compressor.h"
#include "crypto/sha256.h"
#include "data/io.h"

namespace {

using namespace szsec;

struct Options {
  std::string command, input, output;
  Dims dims;
  bool have_dims = false;
  double eb = 1e-4;
  core::Scheme scheme = core::Scheme::kEncrHuffman;
  crypto::Mode mode = crypto::Mode::kCbc;
  Bytes key;
  size_t chunks = 0;     // >0: write a v3 chunked archive
  unsigned threads = 1;  // chunked codec workers (1 = serial)
};

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(
      stderr,
      "usage:\n"
      "  szsec_cli compress <in.bin> <out.szs> --dims Z,Y,X --eb 1e-4\n"
      "            [--scheme none|cmpr-encr|encr-quant|encr-huffman]\n"
      "            [--key <hex>] [--mode cbc|ctr]\n"
      "            [--chunks N] [--threads N]\n"
      "  szsec_cli decompress <in.szs> <out.bin> [--key <hex>]\n"
      "            [--threads N]\n"
      "  szsec_cli info <in.szs>\n"
      "(see docs/CLI.md for the full reference)\n");
  std::exit(2);
}

Dims parse_dims(const std::string& s) {
  std::vector<size_t> extents;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    extents.push_back(std::stoull(tok));
  }
  switch (extents.size()) {
    case 1:
      return Dims{extents[0]};
    case 2:
      return Dims{extents[0], extents[1]};
    case 3:
      return Dims{extents[0], extents[1], extents[2]};
    case 4:
      return Dims{extents[0], extents[1], extents[2], extents[3]};
    default:
      usage("--dims takes 1..4 comma-separated extents");
  }
}

Options parse(int argc, char** argv) {
  if (argc < 3) usage("missing command/arguments");
  Options o;
  o.command = argv[1];
  o.input = argv[2];
  int i = 3;
  if (o.command != "info") {
    if (argc < 4) usage("missing output path");
    o.output = argv[3];
    i = 4;
  }
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--dims") {
      o.dims = parse_dims(next());
      o.have_dims = true;
    } else if (arg == "--eb") {
      o.eb = std::stod(next());
    } else if (arg == "--key") {
      o.key = from_hex(next());
    } else if (arg == "--password") {
      const std::string pw = next();
      static const std::string kSalt = "szsec-cli-v1";
      o.key = crypto::pbkdf2_hmac_sha256(
          BytesView(reinterpret_cast<const uint8_t*>(pw.data()), pw.size()),
          BytesView(reinterpret_cast<const uint8_t*>(kSalt.data()),
                    kSalt.size()),
          100000, 16);
    } else if (arg == "--mode") {
      const std::string m = next();
      if (m == "cbc") {
        o.mode = crypto::Mode::kCbc;
      } else if (m == "ctr") {
        o.mode = crypto::Mode::kCtr;
      } else {
        usage("unknown --mode");
      }
    } else if (arg == "--chunks") {
      o.chunks = std::stoull(next());
      if (o.chunks == 0) usage("--chunks must be >= 1");
    } else if (arg == "--threads") {
      const long t = std::stol(next());
      if (t < 1) usage("--threads must be >= 1");
      o.threads = static_cast<unsigned>(t);
    } else if (arg == "--scheme") {
      const std::string s = next();
      if (s == "none") {
        o.scheme = core::Scheme::kNone;
      } else if (s == "cmpr-encr") {
        o.scheme = core::Scheme::kCmprEncr;
      } else if (s == "encr-quant") {
        o.scheme = core::Scheme::kEncrQuant;
      } else if (s == "encr-huffman") {
        o.scheme = core::Scheme::kEncrHuffman;
      } else {
        usage("unknown --scheme");
      }
    } else {
      usage(("unknown argument " + arg).c_str());
    }
  }
  return o;
}

// Per-stage breakdown from the codec's PipelineMetrics: wall time plus
// the byte volume through each stage (and the resulting stage ratio).
void print_stage_metrics(const char* title, const StageTimes& times) {
  std::printf("%s\n", title);
  std::printf("  %-18s %10s %12s %12s %8s\n", "stage", "ms", "bytes in",
              "bytes out", "ratio");
  for (const auto& [stage, m] : times.all()) {
    std::printf("  %-18s %10.3f", stage.c_str(), m.seconds * 1e3);
    if (m.bytes_in > 0 || m.bytes_out > 0) {
      std::printf(" %12llu %12llu %8.3f",
                  static_cast<unsigned long long>(m.bytes_in),
                  static_cast<unsigned long long>(m.bytes_out), m.ratio());
    }
    std::printf("\n");
  }
  std::printf("  %-18s %10.3f\n", "total", times.total() * 1e3);
}

bool is_chunked_archive(BytesView bytes) {
  if (bytes.size() < sizeof(uint32_t)) return false;
  uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  return magic == archive::kChunkedMagic;
}

Bytes read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good()) usage(("cannot open " + path).c_str());
  Bytes data(static_cast<size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  return data;
}

int cmd_compress(const Options& o) {
  if (!o.have_dims) usage("compress requires --dims");
  if (o.scheme != core::Scheme::kNone && o.key.empty()) {
    usage("encrypting schemes require --key");
  }
  const std::vector<float> values = data::load_f32(o.input);
  if (values.size() != o.dims.count()) {
    std::fprintf(stderr, "error: file has %zu floats but dims %s = %zu\n",
                 values.size(), o.dims.to_string().c_str(),
                 o.dims.count());
    return 1;
  }
  sz::Params params;
  params.abs_error_bound = o.eb;
  if (o.chunks > 0) {
    archive::ChunkedConfig config;
    config.chunks = o.chunks;
    config.threads = o.threads;
    const archive::ChunkedCompressResult r = archive::compress_chunked(
        std::span<const float>(values), o.dims, params, o.scheme,
        BytesView(o.key), core::CipherSpec{crypto::CipherKind::kAes128,
                                           o.mode},
        config);
    std::ofstream out(o.output, std::ios::binary);
    out.write(reinterpret_cast<const char*>(r.archive.data()),
              static_cast<std::streamsize>(r.archive.size()));
    std::printf(
        "%s: %zu -> %zu bytes (%.2fx), scheme %s, eb %g, "
        "%zu chunks, %u threads\n",
        o.output.c_str(), values.size() * 4, r.archive.size(),
        r.stats.compression_ratio(), core::scheme_name(o.scheme), o.eb,
        r.chunk_count, o.threads);
    print_stage_metrics("stages (summed over chunks):", r.times);
    return 0;
  }
  const core::SecureCompressor c(params, o.scheme, BytesView(o.key),
                                 o.mode);
  const core::CompressResult r =
      c.compress(std::span<const float>(values), o.dims);
  std::ofstream out(o.output, std::ios::binary);
  out.write(reinterpret_cast<const char*>(r.container.data()),
            static_cast<std::streamsize>(r.container.size()));
  std::printf("%s: %zu -> %zu bytes (%.2fx), scheme %s, eb %g\n",
              o.output.c_str(), values.size() * 4, r.container.size(),
              r.stats.compression_ratio(), core::scheme_name(o.scheme),
              o.eb);
  print_stage_metrics("stages:", r.times);
  return 0;
}

int cmd_decompress(const Options& o) {
  const Bytes container = read_all(o.input);
  if (is_chunked_archive(BytesView(container))) {
    archive::ChunkedConfig config;
    config.threads = o.threads;
    PipelineMetrics metrics;
    config.metrics = &metrics;
    const std::vector<float> values = archive::decompress_chunked_f32(
        BytesView(container), BytesView(o.key), config);
    data::save_f32(o.output, values);
    std::printf("%s: restored %zu floats (dims %s, %u threads)\n",
                o.output.c_str(), values.size(),
                archive::chunked_dims(BytesView(container))
                    .to_string()
                    .c_str(),
                o.threads);
    print_stage_metrics("stages (summed over chunks):", metrics);
    return 0;
  }
  const core::Header h = core::peek_header(BytesView(container));
  if (h.scheme != core::Scheme::kNone && o.key.empty()) {
    usage("this container is encrypted; supply --key");
  }
  const core::SecureCompressor c(sz::Params{}, h.scheme, BytesView(o.key),
                                 h.cipher_mode);
  core::DecompressResult r = c.decompress(BytesView(container));
  SZSEC_REQUIRE(r.dtype == sz::DType::kFloat32, "container holds float64");
  data::save_f32(o.output, r.f32);
  std::printf("%s: restored %zu floats (dims %s, eb %g)\n",
              o.output.c_str(), r.f32.size(), h.dims.to_string().c_str(),
              h.params.abs_error_bound);
  print_stage_metrics("stages:", r.times);
  return 0;
}

int cmd_info(const Options& o) {
  const Bytes container = read_all(o.input);
  if (is_chunked_archive(BytesView(container))) {
    const archive::ChunkIndex index =
        archive::read_chunk_index(BytesView(container));
    std::printf("container:     v3 chunked archive\n");
    std::printf("dims:          %s (%zu elements)\n",
                index.dims.to_string().c_str(), index.dims.count());
    std::printf("chunks:        %zu\n", index.entries.size());
    std::printf("  %6s %12s %12s %10s %10s\n", "chunk", "offset", "bytes",
                "row start", "rows");
    for (size_t i = 0; i < index.entries.size(); ++i) {
      const archive::ChunkEntry& e = index.entries[i];
      std::printf("  %6zu %12llu %12llu %10llu %10llu\n", i,
                  static_cast<unsigned long long>(e.offset),
                  static_cast<unsigned long long>(e.frame_len),
                  static_cast<unsigned long long>(e.row_start),
                  static_cast<unsigned long long>(e.row_extent));
    }
    // Per-chunk scheme/cipher details come from the first chunk's own
    // container header (all chunks agree in an undamaged archive).
    if (!index.entries.empty()) {
      const archive::ChunkEntry& first = index.entries.front();
      ByteReader r(BytesView(container).subspan(
          static_cast<size_t>(first.offset)));
      r.get_u64();                     // resync marker
      r.get_varint();                  // chunk id
      r.get_varint();                  // row start
      r.get_varint();                  // row extent
      const uint64_t len = r.get_varint();
      r.get_u32();                     // container CRC
      const core::Header h =
          core::peek_header(r.get_bytes(static_cast<size_t>(len)));
      std::printf("scheme:        %s\n", core::scheme_name(h.scheme));
      std::printf("cipher mode:   %s\n", crypto::mode_name(h.cipher_mode));
      std::printf("error bound:   %g (absolute)\n",
                  h.params.abs_error_bound);
    }
    return 0;
  }
  const core::Header h = core::peek_header(BytesView(container));
  std::printf("scheme:        %s\n", core::scheme_name(h.scheme));
  std::printf("cipher mode:   %s\n", crypto::mode_name(h.cipher_mode));
  std::printf("dtype:         float%d\n",
              h.dtype == sz::DType::kFloat32 ? 32 : 64);
  std::printf("dims:          %s (%zu elements)\n",
              h.dims.to_string().c_str(), h.dims.count());
  std::printf("error bound:   %g (absolute)\n", h.params.abs_error_bound);
  std::printf("quant bins:    %u\n", h.params.quant_bins);
  std::printf("payload:       %llu bytes, crc32 %08x\n",
              static_cast<unsigned long long>(h.payload_size),
              h.payload_crc);
  const double cr = static_cast<double>(h.dims.count()) *
                    dtype_size(h.dtype) / container.size();
  std::printf("ratio:         %.3fx\n", cr);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options o = parse(argc, argv);
    if (o.command == "compress") return cmd_compress(o);
    if (o.command == "decompress") return cmd_decompress(o);
    if (o.command == "info") return cmd_info(o);
    usage("unknown command");
  } catch (const szsec::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
