// szsec_cli: a small command-line front end for the library, in the
// spirit of the `sz` executable.
//
//   szsec_cli compress   <in.bin> <out.szs> --dims Z,Y,X --eb 1e-4
//             [--scheme none|cmpr-encr|encr-quant|encr-huffman]
//             [--key <hex 16/24/32 bytes> | --password <string>]
//             [--mode cbc|ctr] [--chunks N] [--threads N]
//             [--drbg-seed S]
//   szsec_cli decompress <in.szs> <out.bin> [--key <hex> | --password <s>]
//             [--threads N]
//   szsec_cli extract    <in.szs> <out.bin> --range A:B | --roi o0,o1[,o2]:n0,n1[,n2]
//             [--key <hex> | --password <s>] [--threads N]
//   szsec_cli info       <in.szs> [--json]
//   szsec_cli verify     <in.szs> [--key <hex> | --password <s>]
//   szsec_cli serve      <socket> --tenant name=<hex master key> ...
//             [--threads N] [--budget-mb N] [--chunks N]
//   szsec_cli client     <socket> <op> [in] [out] [--tenant name]
//             [--key-id N] [--dims Z,Y,X] [--eb 1e-4] [--scheme S]
//             [--mode cbc|ctr] [--auth] [--chunks N]
//
// `serve` runs the multi-tenant archive service daemon (src/service):
// concurrent compress/decompress/verify/salvage jobs over a Unix-domain
// socket, one shared thread pool with round-robin tenant fairness,
// admission control by in-flight payload bytes, per-tenant HKDF-derived
// data keys, and graceful drain on SIGTERM/SIGINT (in-flight jobs
// finish and respond; new requests get a typed "draining" status).
// `client` submits one job: op is ping|compress|decompress|verify|
// salvage; in/out are files or '-'.  A daemon that is not running
// surfaces as exit 2 with the connect errno text.  See docs/SERVICE.md.
//
// `-` in place of a path means stdin (inputs) or stdout (outputs), so
// the CLI composes in pipelines:
//
//   cat field.bin | szsec_cli compress - - --dims 512,512 --eb 1e-4
//       --chunks 64 --key ... | ssh host 'cat > field.szs'
//
// When stdout carries data, every human-readable report moves to
// stderr.  Chunked (--chunks) compression and chunked decompression
// stream: chunks are pulled from the input, coded across --threads
// workers, and committed to the output in index order, so peak memory
// is bounded by the in-flight window, not the field size.
//
// --chunks N writes a fault-tolerant v3 chunked archive (N independent
// chunks) instead of a single v2 container; --threads N fans the
// per-chunk codec work across N workers (chunked archives only — output
// bytes are identical for every thread count).  decompress and info
// detect the container kind from the magic (on pipes, by sniffing the
// first four bytes and replaying them).
//
// --password derives an AES-128 key via PBKDF2-HMAC-SHA256 (100k
// iterations, fixed application salt) — convenient for interactive use;
// supply a random --key for production.
//
// compress and decompress run through the sans-io context
// (core/sansio.h): the codec sees only byte spans, and the CLI owns
// every transport concern — retry, pipes, atomic file commit.
// --drbg-seed S seeds the IV generator, making compressed output a
// pure function of (flags, key, field bytes) — the CI golden-container
// replays pin exact archive SHA-256s through this flag.
//
// Input .bin files are raw little-endian float32 (SDRBench layout).
//
// `extract` is random access: it opens a v3 chunked archive through
// SeekableReader and decodes ONLY the chunks covering the requested
// element range (--range A:B, half-open) or hyperslab ROI (--roi
// origin:extent, one comma list per axis), writing raw little-endian
// element bytes.  The input must be seekable — a real file, not a pipe
// (exit 2 with the ESPIPE text otherwise); stream `decompress` instead.
//
// `verify` is a read-only integrity scan (no decode, no key required):
// header/index parse, per-chunk CRC, and MAC when a key is supplied.
// Exit 0 = clean, 1 = damage found, 2 = operational failure.
//
// Durability: file outputs are written through an AtomicFileSink —
// bytes stage in a same-directory temp file and are fsync+renamed over
// the target only on success, so a crash or error mid-write leaves the
// complete old file (or no file), never a torn archive.
//
// Exit codes: 0 success, 1 data error (szsec::Error: corrupt
// containers, wrong keys, verify found damage), 2 usage or operational
// I/O error (IoError: unreadable/unwritable files, broken pipes — the
// errno text is printed).
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "archive/chunked.h"
#include "archive/seekable.h"
#include "archive/verify.h"
#include "common/bytestream.h"
#include "common/hex.h"
#include "common/io.h"
#include "core/sansio.h"
#include "crypto/sha256.h"
#include "data/io.h"
#include "service/client.h"
#include "service/daemon.h"

namespace {

using namespace szsec;

struct Options {
  std::string command, input, output;
  Dims dims;
  bool have_dims = false;
  double eb = 1e-4;
  core::Scheme scheme = core::Scheme::kEncrHuffman;
  crypto::Mode mode = crypto::Mode::kCbc;
  Bytes key;
  bool auth = false;     // append an HMAC-SHA256 tag to each container
  size_t chunks = 0;     // >0: write a v3 chunked archive
  unsigned threads = 1;  // chunked codec workers (1 = serial)
  std::optional<uint64_t> drbg_seed;  // --drbg-seed: reproducible IVs
  bool json = false;     // info: machine-readable output
  bool have_range = false;
  uint64_t range_lo = 0, range_hi = 0;   // extract --range (half-open)
  std::vector<size_t> roi_origin, roi_extent;  // extract --roi
};

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(
      stderr,
      "usage:\n"
      "  szsec_cli compress <in.bin> <out.szs> --dims Z,Y,X --eb 1e-4\n"
      "            [--scheme none|cmpr-encr|encr-quant|encr-huffman]\n"
      "            [--key <hex>] [--mode cbc|ctr] [--auth]\n"
      "            [--chunks N] [--threads N] [--drbg-seed S]\n"
      "  szsec_cli decompress <in.szs> <out.bin> [--key <hex>]\n"
      "            [--threads N]\n"
      "  szsec_cli extract <in.szs> <out.bin> --range A:B |\n"
      "            --roi o0,o1[,o2]:n0,n1[,n2] [--key <hex>] [--threads N]\n"
      "  szsec_cli info <in.szs> [--json]\n"
      "  szsec_cli verify <in.szs> [--key <hex>]\n"
      "  szsec_cli serve <socket> --tenant name=<hexkey> ...\n"
      "            [--threads N] [--budget-mb N] [--chunks N]\n"
      "  szsec_cli client <socket> ping|compress|decompress|verify|salvage\n"
      "            [in] [out] [--tenant name] [--key-id N] [--dims Z,Y,X]\n"
      "            [--eb 1e-4] [--scheme S] [--mode cbc|ctr] [--auth]\n"
      "            [--chunks N]\n"
      "  ('-' as a path reads stdin / writes stdout)\n"
      "(see docs/CLI.md for the full reference)\n");
  std::exit(2);
}

Dims parse_dims(const std::string& s) {
  std::vector<size_t> extents;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    extents.push_back(std::stoull(tok));
  }
  switch (extents.size()) {
    case 1:
      return Dims{extents[0]};
    case 2:
      return Dims{extents[0], extents[1]};
    case 3:
      return Dims{extents[0], extents[1], extents[2]};
    case 4:
      return Dims{extents[0], extents[1], extents[2], extents[3]};
    default:
      usage("--dims takes 1..4 comma-separated extents");
  }
}

/// Comma-separated non-negative integers ("12,4,0"), for --roi halves.
std::vector<size_t> parse_size_list(const std::string& s) {
  std::vector<size_t> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    out.push_back(static_cast<size_t>(std::stoull(tok)));
  }
  return out;
}

Options parse(int argc, char** argv) {
  if (argc < 3) usage("missing command/arguments");
  Options o;
  o.command = argv[1];
  o.input = argv[2];
  int i = 3;
  if (o.command != "info" && o.command != "verify") {
    if (argc < 4) usage("missing output path");
    o.output = argv[3];
    i = 4;
  }
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--dims") {
      o.dims = parse_dims(next());
      o.have_dims = true;
    } else if (arg == "--eb") {
      o.eb = std::stod(next());
    } else if (arg == "--key") {
      o.key = from_hex(next());
    } else if (arg == "--password") {
      const std::string pw = next();
      static const std::string kSalt = "szsec-cli-v1";
      o.key = crypto::pbkdf2_hmac_sha256(
          BytesView(reinterpret_cast<const uint8_t*>(pw.data()), pw.size()),
          BytesView(reinterpret_cast<const uint8_t*>(kSalt.data()),
                    kSalt.size()),
          100000, 16);
    } else if (arg == "--mode") {
      const std::string m = next();
      if (m == "cbc") {
        o.mode = crypto::Mode::kCbc;
      } else if (m == "ctr") {
        o.mode = crypto::Mode::kCtr;
      } else {
        usage("unknown --mode");
      }
    } else if (arg == "--auth") {
      o.auth = true;
    } else if (arg == "--json") {
      o.json = true;
    } else if (arg == "--range") {
      const std::string v = next();
      const size_t colon = v.find(':');
      if (colon == std::string::npos) usage("--range takes A:B");
      try {
        o.range_lo = std::stoull(v.substr(0, colon));
        o.range_hi = std::stoull(v.substr(colon + 1));
      } catch (const std::exception&) {
        usage("--range takes A:B (non-negative integers)");
      }
      if (o.range_lo >= o.range_hi) usage("--range needs A < B");
      o.have_range = true;
    } else if (arg == "--roi") {
      const std::string v = next();
      const size_t colon = v.find(':');
      if (colon == std::string::npos) usage("--roi takes origin:extent");
      try {
        o.roi_origin = parse_size_list(v.substr(0, colon));
        o.roi_extent = parse_size_list(v.substr(colon + 1));
      } catch (const std::exception&) {
        usage("--roi takes comma lists (o0,o1:n0,n1)");
      }
      if (o.roi_origin.empty() ||
          o.roi_origin.size() != o.roi_extent.size()) {
        usage("--roi origin and extent need the same 1..4 axes");
      }
      for (size_t n : o.roi_extent) {
        if (n == 0) usage("--roi extents must be >= 1");
      }
    } else if (arg == "--chunks") {
      o.chunks = std::stoull(next());
      if (o.chunks == 0) usage("--chunks must be >= 1");
    } else if (arg == "--drbg-seed") {
      try {
        o.drbg_seed = std::stoull(next(), nullptr, 0);
      } catch (const std::exception&) {
        usage("--drbg-seed takes an unsigned integer (decimal or 0x hex)");
      }
    } else if (arg == "--threads") {
      const long t = std::stol(next());
      if (t < 1) usage("--threads must be >= 1");
      o.threads = static_cast<unsigned>(t);
    } else if (arg == "--scheme") {
      const std::string s = next();
      if (s == "none") {
        o.scheme = core::Scheme::kNone;
      } else if (s == "cmpr-encr") {
        o.scheme = core::Scheme::kCmprEncr;
      } else if (s == "encr-quant") {
        o.scheme = core::Scheme::kEncrQuant;
      } else if (s == "encr-huffman") {
        o.scheme = core::Scheme::kEncrHuffman;
      } else {
        usage("unknown --scheme");
      }
    } else {
      usage(("unknown argument " + arg).c_str());
    }
  }
  return o;
}

// Per-stage breakdown from the codec's PipelineMetrics: wall time plus
// the byte volume through each stage (and the resulting stage ratio).
// Reports go to `to`: stdout normally, stderr when stdout carries data.
void print_stage_metrics(std::FILE* to, const char* title,
                         const StageTimes& times) {
  std::fprintf(to, "%s\n", title);
  std::fprintf(to, "  %-18s %10s %12s %12s %8s\n", "stage", "ms",
               "bytes in", "bytes out", "ratio");
  for (const auto& [stage, m] : times.all()) {
    std::fprintf(to, "  %-18s %10.3f", stage.c_str(), m.seconds * 1e3);
    if (m.bytes_in > 0 || m.bytes_out > 0) {
      std::fprintf(to, " %12llu %12llu %8.3f",
                   static_cast<unsigned long long>(m.bytes_in),
                   static_cast<unsigned long long>(m.bytes_out), m.ratio());
    }
    std::fprintf(to, "\n");
  }
  std::fprintf(to, "  %-18s %10.3f\n", "total", times.total() * 1e3);
}

bool is_chunked_magic(BytesView bytes) {
  if (bytes.size() < sizeof(uint32_t)) return false;
  uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  return magic == archive::kChunkedMagic;
}

/// Transient OS hiccups (EINTR/EAGAIN/short writes) retry with bounded
/// backoff on every CLI endpoint; permanent errors surface immediately.
RetryPolicy cli_retry() { return RetryPolicy::standard(); }

/// Input bytes for decompress/info: a pipe for "-", else the file (a
/// missing file is a usage error, matching the historical contract).
std::unique_ptr<ByteSource> open_input(const std::string& path) {
  if (path == "-") return std::make_unique<FdSource>(0, cli_retry());
  try {
    return std::make_unique<FileSource>(path, cli_retry());
  } catch (const IoError&) {
    usage(("cannot open " + path).c_str());
  }
}

/// Output plumbing: stdout for "-", an AtomicFileSink otherwise.  File
/// bytes stage in a temp file until commit() publishes them under the
/// final name (fsync + rename + directory fsync) — on any failure the
/// sink's destructor discards the temp file and a pre-existing target
/// survives untouched, so a torn archive is never observable.
struct Output {
  std::unique_ptr<ByteSink> sink;
  AtomicFileSink* atomic = nullptr;  ///< borrowed view of `sink`, or null

  void commit() {
    if (atomic != nullptr) {
      atomic->commit();
    } else {
      sink->flush();
    }
  }
};

Output open_output(const std::string& path) {
  Output o;
  if (path == "-") {
    o.sink = std::make_unique<FdSink>(1, cli_retry());
  } else {
    auto atomic = std::make_unique<AtomicFileSink>(path, cli_retry());
    o.atomic = atomic.get();
    o.sink = std::move(atomic);
  }
  return o;
}

/// Drains a source to memory (the v2 codec and `info` need the whole
/// container; fields and v3 archives stream instead).
Bytes slurp(ByteSource& src) {
  Bytes out;
  uint8_t buf[1 << 16];
  for (size_t n;
       (n = src.read(std::span<uint8_t>(buf, sizeof(buf)))) > 0;) {
    out.insert(out.end(), buf, buf + n);
  }
  return out;
}

/// Pumps a sans-io Context between a ByteSource and a ByteSink.  The
/// Context never sees a file descriptor: the CLI reads, feeds, pulls,
/// and writes, so every transport concern (retry, atomic commit,
/// pipes) stays on this side of the API.
sansio::Result run_context(sansio::Context& ctx, ByteSource& in,
                           ByteSink& out) {
  Bytes ibuf(size_t{1} << 16), obuf(size_t{1} << 16);
  size_t have = 0, off = 0;
  bool in_eof = false, finished = false;
  for (;;) {
    switch (ctx.status()) {
      case sansio::Status::kHaveOutput: {
        size_t produced = 0;
        ctx.pull(std::span<uint8_t>(obuf.data(), obuf.size()), produced);
        out.write(BytesView(obuf.data(), produced));
        break;
      }
      case sansio::Status::kNeedInput: {
        if (off == have && !in_eof) {
          have = in.read(std::span<uint8_t>(ibuf.data(), ibuf.size()));
          off = 0;
          if (have == 0) in_eof = true;
        }
        if (in_eof) {
          if (!finished) {
            finished = true;
            ctx.finish();
          }
        } else {
          size_t consumed = 0;
          ctx.feed(BytesView(ibuf.data() + off, have - off), consumed);
          off += consumed;
        }
        break;
      }
      case sansio::Status::kDone:
        return ctx.result();
    }
  }
}

int cmd_compress(const Options& o) {
  if (!o.have_dims) usage("compress requires --dims");
  if (o.scheme != core::Scheme::kNone && o.key.empty()) {
    usage("encrypting schemes require --key");
  }
  const bool to_stdout = o.output == "-";
  std::FILE* report = to_stdout ? stderr : stdout;

  // A regular file's size is checked up front so a wrong --dims fails
  // before any work (pipes cannot be sized; a short pipe surfaces as
  // an IoError from the context instead).
  if (o.input != "-") {
    std::ifstream f(o.input, std::ios::binary | std::ios::ate);
    if (f.good()) {
      const auto bytes = static_cast<uint64_t>(f.tellg());
      if (bytes != o.dims.count() * sizeof(float)) {
        std::fprintf(stderr,
                     "error: file has %llu floats but dims %s = %zu\n",
                     static_cast<unsigned long long>(bytes / 4),
                     o.dims.to_string().c_str(), o.dims.count());
        return 1;
      }
    }
  }

  sansio::EncoderConfig ec;
  ec.params.abs_error_bound = o.eb;
  ec.scheme = o.scheme;
  ec.spec = core::CipherSpec{crypto::CipherKind::kAes128, o.mode, o.auth};
  ec.key = o.key;
  ec.dims = o.dims;
  ec.drbg_seed = o.drbg_seed;
  if (o.chunks > 0) {
    ec.container = sansio::Container::kV3Chunked;
    ec.chunks = o.chunks;
    ec.threads = o.threads;
  }
  auto ctx = sansio::Context::encoder(std::move(ec));

  sansio::Result r;
  if (o.chunks > 0) {
    // Streaming path: chunks flow input -> context -> output with
    // memory bounded by the scheduler's in-flight window.
    std::unique_ptr<ByteSource> in;
    if (o.input == "-") {
      in = std::make_unique<FdSource>(0, cli_retry());
    } else {
      in = std::make_unique<FileSource>(o.input, cli_retry());
    }
    Output out = open_output(o.output);
    r = run_context(*ctx, *in, *out.sink);
    out.commit();
  } else {
    // v2 single container: one-shot format, so the field is loaded and
    // size-checked first (stdin included — the historical exit-1
    // contract for a --dims mismatch predates the sans-io core).
    Bytes raw;
    if (o.input == "-") {
      FdSource src(0);
      raw = slurp(src);
    } else {
      FileSource src(o.input, cli_retry());
      raw = slurp(src);
    }
    if (raw.size() % sizeof(float) != 0) {
      std::fprintf(stderr,
                   "error: stdin carried %zu bytes, not a multiple of 4\n",
                   raw.size());
      return 1;
    }
    if (raw.size() / sizeof(float) != o.dims.count()) {
      std::fprintf(stderr, "error: file has %zu floats but dims %s = %zu\n",
                   raw.size() / sizeof(float), o.dims.to_string().c_str(),
                   o.dims.count());
      return 1;
    }
    MemorySource src{BytesView(raw)};
    Output out = open_output(o.output);
    r = run_context(*ctx, src, *out.sink);
    out.commit();
  }

  if (o.chunks > 0) {
    std::fprintf(report,
                 "%s: %llu -> %llu bytes (%.2fx), scheme %s, eb %g, "
                 "%zu chunks, %u threads\n",
                 o.output.c_str(),
                 static_cast<unsigned long long>(r.stats.raw_bytes),
                 static_cast<unsigned long long>(r.bytes_out),
                 r.stats.compression_ratio(), core::scheme_name(o.scheme),
                 o.eb, r.chunk_count, o.threads);
    print_stage_metrics(report, "stages (summed over chunks):", r.times);
  } else {
    std::fprintf(report, "%s: %llu -> %llu bytes (%.2fx), scheme %s, eb %g\n",
                 o.output.c_str(),
                 static_cast<unsigned long long>(r.bytes_in),
                 static_cast<unsigned long long>(r.bytes_out),
                 r.stats.compression_ratio(), core::scheme_name(o.scheme),
                 o.eb);
    print_stage_metrics(report, "stages:", r.times);
  }
  return 0;
}

int cmd_decompress(const Options& o) {
  const bool to_stdout = o.output == "-";
  std::FILE* report = to_stdout ? stderr : stdout;
  const std::unique_ptr<ByteSource> in = open_input(o.input);

  // Sniff the magic, then replay it in front of the remaining stream —
  // pipes cannot seek back.  (The sans-io decoder sniffs again itself;
  // the CLI only needs the kind for the "supply --key" usage check and
  // the report wording.)
  uint8_t head[sizeof(uint32_t)] = {};
  const size_t head_len = read_full(*in, std::span<uint8_t>(head));
  SZSEC_CHECK_FORMAT(head_len == sizeof(head),
                     "input too short for any container");

  sansio::DecoderConfig dc;
  dc.key = o.key;
  dc.threads = o.threads;

  sansio::Result r;
  const bool chunked = is_chunked_magic(BytesView(head, sizeof(head)));
  if (chunked) {
    // v3 chunked archives stream: frames in, elements out, in index
    // order, with memory bounded by the in-flight window.
    auto ctx = sansio::Context::decoder(std::move(dc));
    ConcatSource full(BytesView(head, sizeof(head)), *in);
    Output out = open_output(o.output);
    r = run_context(*ctx, full, *out.sink);
    out.commit();
    std::fprintf(report, "%s: restored %llu float%d elements "
                         "(dims %s, %u threads)\n",
                 o.output.c_str(),
                 static_cast<unsigned long long>(r.elements),
                 r.dtype == sz::DType::kFloat32 ? 32 : 64,
                 r.dims.to_string().c_str(), o.threads);
    print_stage_metrics(report, "stages (summed over chunks):", r.times);
    return 0;
  }

  // v2 single containers and v1 slab archives are one-shot formats:
  // load the container, honor the historical "supply --key" usage exit
  // for v2, then decode through the same sans-io machine.
  Bytes container(head, head + sizeof(head));
  {
    const Bytes rest = slurp(*in);
    container.insert(container.end(), rest.begin(), rest.end());
  }
  uint32_t magic = 0;
  std::memcpy(&magic, head, sizeof(magic));
  if (magic == core::kMagic) {
    const core::Header h = core::peek_header(BytesView(container));
    if (h.scheme != core::Scheme::kNone && o.key.empty()) {
      usage("this container is encrypted; supply --key");
    }
  }
  auto ctx = sansio::Context::decoder(std::move(dc));
  {
    MemorySource src{BytesView(container)};
    Output out = open_output(o.output);
    r = run_context(*ctx, src, *out.sink);
    out.commit();
  }
  if (r.dtype == sz::DType::kFloat32) {
    std::fprintf(report, "%s: restored %llu floats (dims %s)\n",
                 o.output.c_str(),
                 static_cast<unsigned long long>(r.elements),
                 r.dims.to_string().c_str());
  } else {
    std::fprintf(report, "%s: restored %llu float64 elements (dims %s)\n",
                 o.output.c_str(),
                 static_cast<unsigned long long>(r.elements),
                 r.dims.to_string().c_str());
  }
  print_stage_metrics(report, "stages:", r.times);
  return 0;
}

int cmd_extract(const Options& o) {
  const bool want_roi = !o.roi_origin.empty();
  if (o.have_range == want_roi) {
    usage("extract takes exactly one of --range or --roi");
  }
  const bool to_stdout = o.output == "-";
  std::FILE* report = to_stdout ? stderr : stdout;

  // A pipe input fails inside open with the typed ESPIPE IoError (exit
  // 2): random access needs a real file.
  archive::SeekableOptions sopt;
  sopt.threads = o.threads;
  const auto reader = archive::SeekableReader::open(
      open_input(o.input), BytesView(o.key), sopt);

  uint64_t count = 0;
  if (o.have_range) {
    count = o.range_hi - o.range_lo;
  } else {
    count = 1;
    for (size_t n : o.roi_extent) count *= n;
  }
  const std::span<const size_t> origin(o.roi_origin);
  const std::span<const size_t> extent(o.roi_extent);
  Output out = open_output(o.output);
  if (reader->dtype() == sz::DType::kFloat32) {
    std::vector<float> vals(static_cast<size_t>(count));
    if (o.have_range) {
      reader->read_range(o.range_lo, o.range_hi, std::span<float>(vals));
    } else {
      reader->read_roi(origin, extent, std::span<float>(vals));
    }
    out.sink->write(BytesView(
        reinterpret_cast<const uint8_t*>(vals.data()),
        vals.size() * sizeof(float)));
  } else {
    std::vector<double> vals(static_cast<size_t>(count));
    if (o.have_range) {
      reader->read_range(o.range_lo, o.range_hi, std::span<double>(vals));
    } else {
      reader->read_roi(origin, extent, std::span<double>(vals));
    }
    out.sink->write(BytesView(
        reinterpret_cast<const uint8_t*>(vals.data()),
        vals.size() * sizeof(double)));
  }
  out.commit();
  std::fprintf(
      report,
      "%s: %llu of %llu elements (float%d), touched %llu of %llu "
      "archive bytes (%.1f%%), table from %s\n",
      o.output.c_str(), static_cast<unsigned long long>(count),
      static_cast<unsigned long long>(reader->elements()),
      reader->dtype() == sz::DType::kFloat32 ? 32 : 64,
      static_cast<unsigned long long>(reader->bytes_read()),
      static_cast<unsigned long long>(reader->archive_size()),
      100.0 * static_cast<double>(reader->bytes_read()) /
          static_cast<double>(reader->archive_size()),
      reader->from_footer() ? "footer" : "prelude index");
  return 0;
}

int cmd_info(const Options& o) {
  const std::unique_ptr<ByteSource> in = open_input(o.input);
  const Bytes container = slurp(*in);
  if (is_chunked_magic(BytesView(container))) {
    const archive::SeekTable table =
        archive::read_seek_table(BytesView(container));
    // Per-chunk scheme/cipher details come from the first chunk's own
    // container header (all chunks agree in an undamaged archive).
    const archive::SeekEntry& first = table.entries.front();
    ByteReader r(BytesView(container).subspan(
        static_cast<size_t>(first.offset)));
    r.get_u64();                     // resync marker
    r.get_varint();                  // chunk id
    r.get_varint();                  // row start
    r.get_varint();                  // row extent
    const uint64_t len = r.get_varint();
    r.get_u32();                     // container CRC
    const core::Header h =
        core::peek_header(r.get_bytes(static_cast<size_t>(len)));
    const int bits = h.dtype == sz::DType::kFloat32 ? 32 : 64;
    if (o.json) {
      std::printf("{\n");
      std::printf("  \"container\": \"v3-chunked\",\n");
      std::printf("  \"seekable\": true,\n");
      std::printf("  \"seek_table\": \"%s\",\n",
                  table.from_footer ? "footer" : "prelude-index");
      std::printf("  \"dims\": [");
      for (size_t i = 0; i < table.dims.rank(); ++i) {
        std::printf("%s%zu", i ? ", " : "", table.dims[i]);
      }
      std::printf("],\n");
      std::printf("  \"elements\": %zu,\n", table.dims.count());
      std::printf("  \"dtype\": \"float%d\",\n", bits);
      std::printf("  \"scheme\": \"%s\",\n", core::scheme_name(h.scheme));
      std::printf("  \"cipher_mode\": \"%s\",\n",
                  crypto::mode_name(h.cipher_mode));
      std::printf("  \"error_bound\": %g,\n", h.params.abs_error_bound);
      std::printf("  \"archive_bytes\": %zu,\n", container.size());
      std::printf("  \"chunks\": [\n");
      for (size_t i = 0; i < table.entries.size(); ++i) {
        const archive::SeekEntry& e = table.entries[i];
        std::printf(
            "    {\"id\": %zu, \"offset\": %llu, \"bytes\": %llu, "
            "\"row_start\": %llu, \"rows\": %llu, "
            "\"elem_start\": %llu, \"elems\": %llu}%s\n",
            i, static_cast<unsigned long long>(e.offset),
            static_cast<unsigned long long>(e.frame_len),
            static_cast<unsigned long long>(e.row_start),
            static_cast<unsigned long long>(e.row_extent),
            static_cast<unsigned long long>(e.elem_start),
            static_cast<unsigned long long>(e.elem_count),
            i + 1 < table.entries.size() ? "," : "");
      }
      std::printf("  ]\n}\n");
      return 0;
    }
    std::printf("container:     v3 chunked archive\n");
    std::printf("seekable:      yes (%s)\n",
                table.from_footer ? "seek-table footer"
                                  : "prelude index fallback");
    std::printf("dims:          %s (%zu elements)\n",
                table.dims.to_string().c_str(), table.dims.count());
    std::printf("dtype:         float%d\n", bits);
    std::printf("chunks:        %zu\n", table.entries.size());
    std::printf("  %6s %12s %12s %10s %10s %12s %10s\n", "chunk", "offset",
                "bytes", "row start", "rows", "elem start", "elems");
    for (size_t i = 0; i < table.entries.size(); ++i) {
      const archive::SeekEntry& e = table.entries[i];
      std::printf("  %6zu %12llu %12llu %10llu %10llu %12llu %10llu\n", i,
                  static_cast<unsigned long long>(e.offset),
                  static_cast<unsigned long long>(e.frame_len),
                  static_cast<unsigned long long>(e.row_start),
                  static_cast<unsigned long long>(e.row_extent),
                  static_cast<unsigned long long>(e.elem_start),
                  static_cast<unsigned long long>(e.elem_count));
    }
    std::printf("scheme:        %s\n", core::scheme_name(h.scheme));
    std::printf("cipher mode:   %s\n", crypto::mode_name(h.cipher_mode));
    std::printf("error bound:   %g (absolute)\n", h.params.abs_error_bound);
    return 0;
  }
  const core::Header h = core::peek_header(BytesView(container));
  const int bits = h.dtype == sz::DType::kFloat32 ? 32 : 64;
  const double cr = static_cast<double>(h.dims.count()) *
                    dtype_size(h.dtype) / container.size();
  if (o.json) {
    std::printf("{\n");
    std::printf("  \"container\": \"v2-single\",\n");
    std::printf("  \"seekable\": false,\n");
    std::printf("  \"dims\": [");
    for (size_t i = 0; i < h.dims.rank(); ++i) {
      std::printf("%s%zu", i ? ", " : "", h.dims[i]);
    }
    std::printf("],\n");
    std::printf("  \"elements\": %zu,\n", h.dims.count());
    std::printf("  \"dtype\": \"float%d\",\n", bits);
    std::printf("  \"scheme\": \"%s\",\n", core::scheme_name(h.scheme));
    std::printf("  \"cipher_mode\": \"%s\",\n",
                crypto::mode_name(h.cipher_mode));
    std::printf("  \"error_bound\": %g,\n", h.params.abs_error_bound);
    std::printf("  \"quant_bins\": %u,\n", h.params.quant_bins);
    std::printf("  \"payload_bytes\": %llu,\n",
                static_cast<unsigned long long>(h.payload_size));
    std::printf("  \"archive_bytes\": %zu,\n", container.size());
    std::printf("  \"ratio\": %.3f\n}\n", cr);
    return 0;
  }
  std::printf("container:     v2 single container\n");
  std::printf("seekable:      no (single container; use --chunks)\n");
  std::printf("scheme:        %s\n", core::scheme_name(h.scheme));
  std::printf("cipher mode:   %s\n", crypto::mode_name(h.cipher_mode));
  std::printf("dtype:         float%d\n", bits);
  std::printf("dims:          %s (%zu elements)\n",
              h.dims.to_string().c_str(), h.dims.count());
  std::printf("error bound:   %g (absolute)\n", h.params.abs_error_bound);
  std::printf("quant bins:    %u\n", h.params.quant_bins);
  std::printf("payload:       %llu bytes, crc32 %08x\n",
              static_cast<unsigned long long>(h.payload_size),
              h.payload_crc);
  std::printf("ratio:         %.3fx\n", cr);
  return 0;
}

int cmd_verify(const Options& o) {
  const std::unique_ptr<ByteSource> in = open_input(o.input);
  const Bytes archive = slurp(*in);
  const archive::VerifyReport rep =
      archive::verify_archive(BytesView(archive), BytesView(o.key));

  std::printf("container:     %s\n",
              rep.chunked ? "v3 chunked archive" : "v2 single container");
  if (!rep.prelude_ok) {
    std::printf("prelude:       FAILED (%s)\n", rep.prelude_detail.c_str());
    std::printf("result:        DAMAGED\n");
    return 1;
  }
  std::printf("dims:          %s (%zu elements)\n",
              rep.dims.to_string().c_str(), rep.dims.count());
  if (rep.chunked) {
    std::printf("chunks:        %llu of %zu intact\n",
                static_cast<unsigned long long>(rep.chunks_ok),
                rep.chunks.size());
    std::printf("  %6s %12s %12s %10s  %-22s %s\n", "chunk", "offset",
                "bytes", "rows", "mac", "status");
    for (const archive::VerifyChunk& c : rep.chunks) {
      std::printf("  %6llu %12llu %12llu %10llu  %-22s %s%s%s\n",
                  static_cast<unsigned long long>(c.chunk_id),
                  static_cast<unsigned long long>(c.offset),
                  static_cast<unsigned long long>(c.frame_len),
                  static_cast<unsigned long long>(c.row_extent),
                  archive::to_string(c.mac), c.ok ? "ok" : "DAMAGED",
                  c.detail.empty() ? "" : ": ", c.detail.c_str());
    }
  } else {
    const archive::VerifyChunk& c = rep.chunks.front();
    std::printf("mac:           %s\n", archive::to_string(c.mac));
    if (!c.ok) std::printf("damage:        %s\n", c.detail.c_str());
  }
  if (rep.trailing_bytes > 0) {
    std::printf("trailing:      %llu bytes past the last frame "
                "(ignored by decode)\n",
                static_cast<unsigned long long>(rep.trailing_bytes));
  }
  std::printf("result:        %s\n", rep.clean() ? "clean" : "DAMAGED");
  return rep.clean() ? 0 : 1;
}

// ---------------------------------------------------------------------
// Archive service: serve / client (src/service; docs/SERVICE.md)

/// The running daemon, for the signal handlers.  request_drain() is
/// async-signal-safe by contract, so the handler may call it directly.
std::atomic<service::ServiceDaemon*> g_daemon{nullptr};

extern "C" void handle_drain_signal(int) {
  if (service::ServiceDaemon* d = g_daemon.load()) d->request_drain();
}

int cmd_serve(int argc, char** argv) {
  if (argc < 3) usage("serve requires a socket path");
  service::ServiceConfig config;
  config.socket_path = argv[2];
  service::TenantKeyring keyring;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--tenant") {
      const std::string v = next();
      const size_t eq = v.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= v.size()) {
        usage("--tenant takes name=<hex master key>");
      }
      keyring.add_key(v.substr(0, eq), BytesView(from_hex(v.substr(eq + 1))));
    } else if (arg == "--threads") {
      const long t = std::stol(next());
      if (t < 1) usage("--threads must be >= 1");
      config.threads = static_cast<unsigned>(t);
    } else if (arg == "--budget-mb") {
      const unsigned long long mb = std::stoull(next());
      if (mb < 1) usage("--budget-mb must be >= 1");
      config.admission_budget_bytes = mb << 20;
    } else if (arg == "--chunks") {
      config.default_chunks = std::stoull(next());
      if (config.default_chunks == 0) usage("--chunks must be >= 1");
    } else {
      usage(("unknown argument " + arg).c_str());
    }
  }

  service::ServiceDaemon daemon(config, std::move(keyring));
  daemon.start();
  g_daemon.store(&daemon);
  std::signal(SIGTERM, handle_drain_signal);
  std::signal(SIGINT, handle_drain_signal);
  std::printf("listening on %s (%u threads, %llu MB budget)\n",
              config.socket_path.c_str(),
              config.threads == 0 ? parallel::default_thread_count()
                                  : config.threads,
              static_cast<unsigned long long>(
                  config.admission_budget_bytes >> 20));
  std::fflush(stdout);  // tests poll for this line to learn "ready"
  daemon.wait();
  g_daemon.store(nullptr);
  const service::ServiceStats s = daemon.stats();
  std::printf("drained: %llu connections, %llu jobs (%llu rejected), "
              "peak in-flight %llu bytes\n",
              static_cast<unsigned long long>(s.connections_accepted),
              static_cast<unsigned long long>(s.jobs_completed),
              static_cast<unsigned long long>(s.jobs_rejected),
              static_cast<unsigned long long>(s.peak_in_flight_bytes));
  return 0;
}

int cmd_client(int argc, char** argv) {
  if (argc < 4) usage("client requires <socket> <op>");
  const std::string socket_path = argv[2];
  const std::string op_name = argv[3];

  service::JobRequest req;
  bool needs_input = true;
  bool has_output = true;
  if (op_name == "ping") {
    req.op = service::JobOp::kPing;
    needs_input = false;
    has_output = false;
  } else if (op_name == "compress") {
    req.op = service::JobOp::kCompress;
  } else if (op_name == "decompress") {
    req.op = service::JobOp::kDecompress;
  } else if (op_name == "verify") {
    req.op = service::JobOp::kVerify;
    has_output = false;
  } else if (op_name == "salvage") {
    req.op = service::JobOp::kSalvage;
  } else {
    usage("client op must be ping|compress|decompress|verify|salvage");
  }

  int i = 4;
  std::string input, output;
  if (needs_input) {
    if (argc < 5) usage("this op requires an input path");
    input = argv[4];
    i = 5;
    if (has_output) {
      if (argc < 6) usage("this op requires an output path");
      output = argv[5];
      i = 6;
    }
  }
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--tenant") {
      req.tenant = next();
    } else if (arg == "--key-id") {
      req.key_id = std::stoull(next());
    } else if (arg == "--dims") {
      req.dims = parse_dims(next());
      req.have_dims = true;
    } else if (arg == "--eb") {
      req.error_bound = std::stod(next());
    } else if (arg == "--chunks") {
      req.chunks = std::stoull(next());
    } else if (arg == "--auth") {
      req.authenticate = true;
    } else if (arg == "--mode") {
      const std::string m = next();
      if (m == "cbc") {
        req.mode = crypto::Mode::kCbc;
      } else if (m == "ctr") {
        req.mode = crypto::Mode::kCtr;
      } else {
        usage("unknown --mode");
      }
    } else if (arg == "--scheme") {
      const std::string s = next();
      if (s == "none") {
        req.scheme = core::Scheme::kNone;
      } else if (s == "cmpr-encr") {
        req.scheme = core::Scheme::kCmprEncr;
      } else if (s == "encr-quant") {
        req.scheme = core::Scheme::kEncrQuant;
      } else if (s == "encr-huffman") {
        req.scheme = core::Scheme::kEncrHuffman;
      } else {
        usage("unknown --scheme");
      }
    } else {
      usage(("unknown argument " + arg).c_str());
    }
  }

  if (needs_input) {
    const std::unique_ptr<ByteSource> in = open_input(input);
    req.payload = slurp(*in);
  }

  // connect_unix failures (ENOENT: no daemon ever bound the path;
  // ECONNREFUSED: one did but is gone) throw IoError with the errno
  // text — main() turns that into the exit-2 operational contract.
  service::ServiceClient client(socket_path);
  const service::JobResponse resp = client.submit(req);

  const bool to_stdout = has_output && output == "-";
  std::FILE* report = to_stdout ? stderr : stdout;
  std::fprintf(report, "%s: %s", service::to_string(req.op),
               service::to_string(resp.status));
  if (!resp.detail.empty()) std::fprintf(report, " (%s)", resp.detail.c_str());
  if (resp.key_id != 0) {
    std::fprintf(report, ", key id %llu",
                 static_cast<unsigned long long>(resp.key_id));
  }
  std::fprintf(report, ", %llu raw / %llu archive bytes\n",
               static_cast<unsigned long long>(resp.raw_bytes),
               static_cast<unsigned long long>(resp.archive_bytes));

  if (resp.ok() && has_output) {
    Output out = open_output(output);
    out.sink->write(BytesView(resp.payload));
    out.commit();
  }

  // Exit contract mirrors the local commands: 0 success, 1 data/key
  // failures, 2 operational (retry-able or caller-side) failures.
  switch (resp.status) {
    case service::Status::kOk:
      return 0;
    case service::Status::kDataError:
    case service::Status::kCryptoError:
    case service::Status::kUnknownTenant:
      return 1;
    case service::Status::kBadRequest:
    case service::Status::kOverloaded:
    case service::Status::kDraining:
    case service::Status::kInternalError:
      return 2;
  }
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // A reader hanging up mid-pipe must surface as EPIPE from write() (an
  // IoError, exit 2), not a silent SIGPIPE death — the exit-code
  // contract is part of the CLI's interface.
#ifndef _WIN32
  std::signal(SIGPIPE, SIG_IGN);
#endif
  try {
    if (argc >= 2 && std::string(argv[1]) == "serve") {
      return cmd_serve(argc, argv);
    }
    if (argc >= 2 && std::string(argv[1]) == "client") {
      return cmd_client(argc, argv);
    }
    const Options o = parse(argc, argv);
    if (o.command == "compress") return cmd_compress(o);
    if (o.command == "decompress") return cmd_decompress(o);
    if (o.command == "extract") return cmd_extract(o);
    if (o.command == "info") return cmd_info(o);
    if (o.command == "verify") return cmd_verify(o);
    usage("unknown command");
  } catch (const IoError& e) {
    // Operational failure (unwritable output, broken pipe, disk full):
    // the message carries the errno text from the failing call.
    std::fprintf(stderr, "i/o error: %s\n", e.what());
    return 2;
  } catch (const szsec::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
