// Randomness audit: the paper's Section V-F methodology as a tool.
// Compresses a dataset with each scheme and runs the NIST SP800-22 suite
// on the resulting container body, printing per-test p-values — the
// hands-on way to see *why* Cmpr-Encr output is indistinguishable from
// noise while Encr-Huffman output is not (and why that is still fine,
// Section V-G).
//
//   ./randomness_audit [dataset] [error_bound]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/secure_compressor.h"
#include "data/datasets.h"
#include "nist/sp800_22.h"

int main(int argc, char** argv) {
  using namespace szsec;

  const std::string name = argc > 1 ? argv[1] : "Q2";
  const double eb = argc > 2 ? std::atof(argv[2]) : 1e-5;
  const data::Dataset d = data::make_dataset(name, data::Scale::kBench);
  const Bytes key = crypto::global_drbg().generate(16);

  std::printf("randomness audit: %s @ eb=%.0e (%zu bytes raw)\n",
              name.c_str(), eb, d.bytes());
  std::printf("%-28s", "NIST SP800-22 test");
  const std::vector<core::Scheme> schemes = {
      core::Scheme::kNone, core::Scheme::kCmprEncr, core::Scheme::kEncrQuant,
      core::Scheme::kEncrHuffman};
  for (core::Scheme s : schemes) {
    std::printf(" %13s", core::scheme_name(s));
  }
  std::printf("\n");

  std::vector<std::vector<nist::TestResult>> per_scheme;
  for (core::Scheme scheme : schemes) {
    sz::Params params;
    params.abs_error_bound = eb;
    const core::SecureCompressor c(
        params, scheme,
        scheme == core::Scheme::kNone ? BytesView{} : BytesView(key));
    const auto r = c.compress(std::span<const float>(d.values), d.dims);
    constexpr size_t kHeader = 64;
    const nist::BitSequence bits{
        BytesView(r.container)
            .subspan(kHeader, r.container.size() - kHeader)};
    per_scheme.push_back(nist::run_all(bits));
  }

  const auto names = nist::test_names();
  for (size_t t = 0; t < names.size(); ++t) {
    std::printf("%-28s", names[t].c_str());
    for (const auto& results : per_scheme) {
      const nist::TestResult& r = results[t];
      if (!r.applicable) {
        std::printf(" %13s", "n/a");
      } else {
        // Report the minimum p-value (a test passes if all do).
        double p = 1.0;
        for (double v : r.p_values) p = std::min(p, v);
        std::printf(" %8.4f %s", p, r.passed() ? "pass" : "FAIL");
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading: p >= 0.01 passes.  Cmpr-Encr should pass everything;\n"
      "plain SZ and Encr-Huffman fail many tests (their output is\n"
      "structured); Encr-Quant depends on the predictable fraction.\n");
  return 0;
}
