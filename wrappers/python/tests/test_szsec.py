"""Golden-container replay and API tests for the szsec Python wrapper.

Runs against the built shared library: set ``SZSEC_LIBRARY`` to the
libszsec.so path (CTest does this), or ``SZSEC_BUILD_DIR`` to a CMake
build tree.  Standard library only::

    PYTHONPATH=wrappers/python SZSEC_BUILD_DIR=build \
        python3 -m unittest discover -s wrappers/python/tests

The golden pins here are the same SHA-256 digests
tests/golden_container_test.cpp locks the C++ encoders to.  The field
generator reproduces the C++ ``golden_field_f32`` bit-exactly — note
that ``(rng() % 2001) - 1000`` is uint64 arithmetic in C++, so draws
below 1000 wrap to ~2**64 and the float32 cast lands on exactly 2.0**64;
the wrap is part of the pinned bytes and is reproduced here on purpose.
"""

import hashlib
import math
import struct
import unittest

import szsec

KEY = bytes(range(16))
DIMS = (12, 16, 20)

# SHA-256 pins from tests/golden_container_test.cpp.
PIN_V2 = {
    (szsec.Scheme.NONE, szsec.Mode.CBC):
        "b61956d6ff4e599b3e00de5504f65753b396553a766d1cba26eae51b4b4f70a8",
    (szsec.Scheme.CMPR_ENCR, szsec.Mode.CBC):
        "f9751bb8438d204d5f9e7e4d7228ffa80042c76208c5d138812cbbe68626d36a",
    (szsec.Scheme.ENCR_QUANT, szsec.Mode.CBC):
        "076e35e1f2c9cb1eb25b948fb4aac8ac610e9bf8a09a0fa43cb247e2ee0241a0",
    (szsec.Scheme.ENCR_HUFFMAN, szsec.Mode.CBC):
        "9cae546ebf236276f897204799b0ef55c810777a697b389cfe0b0f35a6a81c93",
    (szsec.Scheme.ENCR_QUANT, szsec.Mode.CTR):
        "a50a92d5ccd26574f3bda32eb0ca8557d6c4293c867fd32ec6f9e1339fd03baf",
}
PIN_AUTHENTICATED = \
    "b63b4364d9f42adb62ceea4b110d9e09abe7fc55a77fb93e0afd0e7dfb08b3f1"
PIN_V3_FOOTERLESS = \
    "f3c578186833f9cb9d44e3e7c2958e4a6136d234adfe3e6e5d16c9613082d188"
PIN_V3_FOOTER = \
    "db0540590a318ac3dbfa2116d0dd8c09dd24417a1841fe0bff5a61828df8d7e7"
PIN_V1_SLAB = \
    "5c8c10668628689ee3746de1c692229a8ddfe54032568ab8eb38ce7343330bb6"


class MT19937_64:
    """std::mt19937_64 (the 64-bit Mersenne Twister, standard constants)."""

    N, M = 312, 156
    MASK = 0xFFFFFFFFFFFFFFFF

    def __init__(self, seed):
        mt = [seed & self.MASK] + [0] * (self.N - 1)
        for i in range(1, self.N):
            mt[i] = (6364136223846793005 *
                     (mt[i - 1] ^ (mt[i - 1] >> 62)) + i) & self.MASK
        self.mt = mt
        self.index = self.N

    def next(self):
        if self.index >= self.N:
            mt = self.mt
            for i in range(self.N):
                x = ((mt[i] & 0xFFFFFFFF80000000) +
                     (mt[(i + 1) % self.N] & 0x7FFFFFFF))
                xa = x >> 1
                if x & 1:
                    xa ^= 0xB5026F5AA96619E9
                mt[i] = mt[(i + self.M) % self.N] ^ xa
            self.index = 0
        y = self.mt[self.index]
        self.index += 1
        y ^= (y >> 29) & 0x5555555555555555
        y ^= (y << 17) & 0x71D67FFFEDA60000
        y ^= (y << 37) & 0xFFF7EEE000000000
        y ^= y >> 43
        return y & self.MASK


def f32(x):
    """Round a Python float to the nearest float32 (C `float` semantics).

    Products and sums of two float32 values are exact in float64, so
    compute-in-double-then-round matches C's single-rounded float ops.
    """
    return struct.unpack("<f", struct.pack("<f", x))[0]


def golden_field_f32(seed=17, count=12 * 16 * 20):
    rng = MT19937_64(seed)
    step_scale = f32(1e-4)
    walk = f32(10.0)
    values = []
    for _ in range(count):
        draw = (rng.next() % 2001 - 1000) & MT19937_64.MASK  # uint64 wrap
        walk = f32(walk + f32(f32(float(draw)) * step_scale))
        values.append(walk)
    return struct.pack(f"<{count}f", *values)


def golden_field_f64(count=12 * 16 * 20):
    return struct.pack(
        f"<{count}d", *(math.cos(i * 0.01) * 50 for i in range(count)))


def sha256(b):
    return hashlib.sha256(b).hexdigest()


class GoldenPins(unittest.TestCase):
    """The wrapper must emit the exact golden container bytes."""

    @classmethod
    def setUpClass(cls):
        cls.field = golden_field_f32()

    def test_v2_scheme_pins(self):
        for (scheme, mode), pin in PIN_V2.items():
            with self.subTest(scheme=scheme.name, mode=mode.name):
                blob = szsec.compress(
                    self.field, dims=DIMS, key=KEY, scheme=scheme,
                    mode=mode, drbg_seed=0xC0FFEE)
                self.assertEqual(sha256(blob), pin)

    def test_authenticated_pin(self):
        blob = szsec.compress(
            self.field, dims=DIMS, key=KEY,
            scheme=szsec.Scheme.ENCR_HUFFMAN, authenticate=True,
            drbg_seed=0xC0FFEE)
        self.assertEqual(sha256(blob), PIN_AUTHENTICATED)

    def test_v3_chunked_pins(self):
        for seek_table, pin in ((False, PIN_V3_FOOTERLESS),
                                (True, PIN_V3_FOOTER)):
            with self.subTest(seek_table=seek_table):
                blob = szsec.compress(
                    self.field, dims=DIMS, key=KEY,
                    scheme=szsec.Scheme.ENCR_HUFFMAN,
                    container=szsec.Container.V3_CHUNKED, chunks=4,
                    threads=2, seek_table=seek_table, drbg_seed=0xABCD)
                self.assertEqual(sha256(blob), pin)

    def test_v1_slab_pin(self):
        blob = szsec.compress(
            self.field, dims=DIMS, key=KEY,
            scheme=szsec.Scheme.CMPR_ENCR,
            container=szsec.Container.V1_SLAB, chunks=4, threads=2,
            drbg_seed=0xABCD)
        self.assertEqual(sha256(blob), PIN_V1_SLAB)

    def test_streaming_encoder_matches_one_shot_bytes(self):
        one_shot = szsec.compress(
            self.field, dims=DIMS, key=KEY,
            scheme=szsec.Scheme.ENCR_HUFFMAN,
            container=szsec.Container.V3_CHUNKED, chunks=4,
            drbg_seed=0xABCD)
        streamed = bytearray()
        with szsec.Encoder(dims=DIMS, key=KEY,
                           scheme=szsec.Scheme.ENCR_HUFFMAN,
                           container=szsec.Container.V3_CHUNKED, chunks=4,
                           drbg_seed=0xABCD) as enc:
            for off in range(0, len(self.field), 997):  # odd-sized feeds
                for out in enc.feed(self.field[off:off + 997]):
                    streamed += out
            for out in enc.finish():
                streamed += out
            info = enc.info()
        self.assertEqual(sha256(bytes(streamed)), sha256(one_shot))
        self.assertEqual(info.container, szsec.Container.V3_CHUNKED)
        self.assertEqual(info.dims, DIMS)
        self.assertEqual(info.chunk_count, 4)
        self.assertEqual(info.bytes_in, len(self.field))
        self.assertEqual(info.bytes_out, len(streamed))


class RoundTrips(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.field = golden_field_f32()

    def _values(self, raw):
        return struct.unpack(f"<{len(raw) // 4}f", raw)

    def test_decode_every_container_kind(self):
        original = self._values(self.field)
        for kwargs in (
            dict(container=szsec.Container.V2_SINGLE),
            dict(container=szsec.Container.V3_CHUNKED, chunks=4, threads=2),
            dict(container=szsec.Container.V1_SLAB, chunks=4),
        ):
            with self.subTest(**kwargs):
                blob = szsec.compress(
                    self.field, dims=DIMS, key=KEY,
                    scheme=szsec.Scheme.ENCR_HUFFMAN, drbg_seed=1,
                    **kwargs)
                raw, info = szsec.decompress(blob, key=KEY, want_info=True)
                self.assertEqual(len(raw), len(self.field))
                self.assertEqual(info.dims, DIMS)
                self.assertEqual(info.dtype, "f32")
                for got, want in zip(self._values(raw), original):
                    self.assertLessEqual(abs(got - want), 1e-4)

    def test_streaming_decoder_matches_one_shot(self):
        blob = szsec.compress(
            self.field, dims=DIMS, key=KEY,
            scheme=szsec.Scheme.ENCR_QUANT,
            container=szsec.Container.V3_CHUNKED, chunks=3, drbg_seed=2)
        one_shot = szsec.decompress(blob, key=KEY)
        streamed = bytearray()
        with szsec.Decoder(key=KEY) as dec:
            for off in range(0, len(blob), 1013):
                for out in dec.feed(blob[off:off + 1013]):
                    streamed += out
            for out in dec.finish():
                streamed += out
        self.assertEqual(bytes(streamed), one_shot)

    def test_float64_round_trip(self):
        field = golden_field_f64()
        blob = szsec.compress(
            field, dims=DIMS, key=KEY, scheme=szsec.Scheme.ENCR_QUANT,
            float64=True, drbg_seed=3)
        raw, info = szsec.decompress(blob, key=KEY, want_info=True)
        self.assertEqual(info.dtype, "f64")
        self.assertEqual(len(raw), len(field))
        got = struct.unpack(f"<{len(raw) // 8}d", raw)
        want = struct.unpack(f"<{len(field) // 8}d", field)
        for g, w in zip(got, want):
            self.assertLessEqual(abs(g - w), 1e-4)

    def test_verify_clean_and_corrupt(self):
        blob = bytearray(szsec.compress(
            self.field, dims=DIMS, key=KEY,
            scheme=szsec.Scheme.ENCR_HUFFMAN, authenticate=True,
            drbg_seed=4))
        szsec.verify(bytes(blob), key=KEY)  # clean: no raise
        blob[len(blob) // 2] ^= 0xFF
        with self.assertRaises(szsec.CorruptError):
            szsec.verify(bytes(blob), key=KEY)

    def test_salvage_decode_of_damaged_archive(self):
        blob = bytearray(szsec.compress(
            self.field, dims=DIMS, key=KEY,
            scheme=szsec.Scheme.ENCR_HUFFMAN,
            container=szsec.Container.V3_CHUNKED, chunks=4, drbg_seed=5))
        # Stomp bytes mid-archive: one chunk dies, the others salvage.
        start = len(blob) // 2
        for i in range(start, start + 32):
            blob[i] ^= 0xA5
        raw, info = szsec.decompress(
            bytes(blob), key=KEY, salvage=True, want_info=True)
        self.assertEqual(len(raw), len(self.field))
        self.assertTrue(info.salvage_used)
        self.assertEqual(info.chunks_expected, 4)
        self.assertLess(info.chunks_recovered, 4)
        self.assertGreaterEqual(info.chunks_recovered, 1)


class Errors(unittest.TestCase):
    def test_library_identity(self):
        self.assertEqual(szsec._load().szsec_abi_version(),
                         szsec.ABI_VERSION)
        self.assertRegex(szsec.library_version(), r"^\d+\.\d+\.\d+")

    def test_wrong_key_is_crypto_error(self):
        field = golden_field_f32()
        blob = szsec.compress(
            field, dims=DIMS, key=KEY, scheme=szsec.Scheme.ENCR_HUFFMAN,
            authenticate=True, drbg_seed=6)
        wrong = bytes([KEY[0] ^ 0xFF]) + KEY[1:]
        with self.assertRaises(szsec.CryptoError):
            szsec.decompress(blob, key=wrong)

    def test_junk_is_corrupt_error(self):
        with self.assertRaises(szsec.CorruptError):
            szsec.decompress(b"definitely not a container", key=KEY)

    def test_missing_key_is_invalid(self):
        with self.assertRaises(szsec.InvalidError):
            szsec.compress(golden_field_f32(), dims=DIMS,
                           scheme=szsec.Scheme.CMPR_ENCR)

    def test_misuse_is_state_error(self):
        field = golden_field_f32()
        enc = szsec.Encoder(dims=DIMS, key=KEY,
                            scheme=szsec.Scheme.ENCR_HUFFMAN, drbg_seed=7)
        list(enc.feed(field))
        list(enc.finish())
        with self.assertRaises(szsec.StateError):
            list(enc.finish())
        enc.close()
        with self.assertRaises(szsec.StateError):
            list(enc.feed(b"x"))

    def test_error_message_is_carried(self):
        try:
            szsec.decompress(b"junkjunkjunk")
        except szsec.CorruptError as e:
            self.assertIn("SZSEC_E_CORRUPT", str(e))
        else:
            self.fail("expected CorruptError")


if __name__ == "__main__":
    unittest.main()
