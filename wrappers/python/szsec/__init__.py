"""ctypes binding for libszsec (the stable C ABI in include/szsec.h).

Pure standard library — no pip dependencies.  The shared library is
located from, in order:

  1. the ``SZSEC_LIBRARY`` environment variable (full path),
  2. ``libszsec.so`` next to a build tree passed via ``SZSEC_BUILD_DIR``
     (``<dir>/src/capi/libszsec.so``),
  3. the system loader (``libszsec.so.1`` / ``libszsec.so``).

One-shots::

    import szsec
    blob = szsec.compress(data, dims=(100, 500, 500), key=key,
                          scheme=szsec.Scheme.ENCR_HUFFMAN)
    raw = szsec.decompress(blob, key=key)
    szsec.verify(blob, key=key)      # raises CorruptError on damage

Streaming (sans-io: you own every byte in flight)::

    enc = szsec.Encoder(dims=(512, 512), key=key, drbg_seed=7)
    with open("field.bin", "rb") as src, open("out.szs", "wb") as dst:
        for chunk in iter(lambda: src.read(65536), b""):
            for out in enc.feed(chunk):
                dst.write(out)
        for out in enc.finish():
            dst.write(out)

Errors raise a typed hierarchy rooted at :class:`SzsecError`, one class
per stable ``SZSEC_E_*`` code.
"""

from __future__ import annotations

import ctypes
import ctypes.util
import enum
import os
from typing import Iterator, Optional, Sequence, Tuple

__all__ = [
    "ABI_VERSION",
    "Scheme",
    "Cipher",
    "Mode",
    "Container",
    "Fill",
    "SzsecError",
    "ArgumentError",
    "StateError",
    "InvalidError",
    "CorruptError",
    "CryptoError",
    "IoPermanentError",
    "IoTransientError",
    "Info",
    "Encoder",
    "Decoder",
    "compress",
    "decompress",
    "verify",
    "library_version",
]

ABI_VERSION = 1

MAX_RANK = 4

# Status codes (non-negative).
OK = 0
NEED_INPUT = 1
HAVE_OUTPUT = 2
DONE = 3


class Scheme(enum.IntEnum):
    NONE = 0
    CMPR_ENCR = 1
    ENCR_QUANT = 2
    ENCR_HUFFMAN = 3


class Cipher(enum.IntEnum):
    AES128 = 0
    AES192 = 1
    AES256 = 2
    DES = 3
    TRIPLE_DES = 4
    CHACHA20 = 5


class Mode(enum.IntEnum):
    CBC = 0
    CTR = 1
    ECB = 2


class Container(enum.IntEnum):
    V2_SINGLE = 0
    V3_CHUNKED = 1
    V1_SLAB = 2


class Fill(enum.IntEnum):
    ZEROS = 0
    NAN = 1


class SzsecError(Exception):
    """Base of the typed error hierarchy; ``code`` is the SZSEC_E_* value."""

    code: int = None  # type: ignore[assignment]

    def __init__(self, message: str, code: Optional[int] = None):
        super().__init__(message)
        if code is not None:
            self.code = code


class ArgumentError(SzsecError):
    code = -1


class StateError(SzsecError):
    code = -2


class InvalidError(SzsecError):
    code = -3


class CorruptError(SzsecError):
    code = -4


class CryptoError(SzsecError):
    code = -5


class IoPermanentError(SzsecError):
    code = -6


class IoTransientError(SzsecError):
    code = -7


class MemoryError_(SzsecError):
    code = -8


class InternalError(SzsecError):
    code = -9


_ERROR_CLASSES = {
    cls.code: cls
    for cls in (
        ArgumentError,
        StateError,
        InvalidError,
        CorruptError,
        CryptoError,
        IoPermanentError,
        IoTransientError,
        MemoryError_,
        InternalError,
    )
}


class _Options(ctypes.Structure):
    _fields_ = [
        ("struct_size", ctypes.c_size_t),
        ("scheme", ctypes.c_int),
        ("cipher_kind", ctypes.c_int),
        ("cipher_mode", ctypes.c_int),
        ("authenticate", ctypes.c_int),
        ("dtype", ctypes.c_int),
        ("container", ctypes.c_int),
        ("seek_table", ctypes.c_int),
        ("rank", ctypes.c_int),
        ("dims", ctypes.c_uint64 * MAX_RANK),
        ("abs_error_bound", ctypes.c_double),
        ("quant_bins", ctypes.c_uint32),
        ("block_side", ctypes.c_uint32),
        ("chunks", ctypes.c_uint64),
        ("threads", ctypes.c_uint32),
        ("salvage", ctypes.c_int),
        ("salvage_fill", ctypes.c_int),
        ("has_drbg_seed", ctypes.c_int),
        ("drbg_seed", ctypes.c_uint64),
    ]


class _Info(ctypes.Structure):
    _fields_ = [
        ("struct_size", ctypes.c_size_t),
        ("container", ctypes.c_int),
        ("dtype", ctypes.c_int),
        ("rank", ctypes.c_int),
        ("dims", ctypes.c_uint64 * MAX_RANK),
        ("elements", ctypes.c_uint64),
        ("bytes_in", ctypes.c_uint64),
        ("bytes_out", ctypes.c_uint64),
        ("chunk_count", ctypes.c_uint64),
        ("compression_ratio", ctypes.c_double),
        ("salvage_used", ctypes.c_int),
        ("chunks_expected", ctypes.c_uint64),
        ("chunks_recovered", ctypes.c_uint64),
    ]


class Info:
    """Outcome of a finished context (read-only snapshot)."""

    def __init__(self, raw: _Info):
        self.container = Container(raw.container)
        self.dtype = "f64" if raw.dtype == 1 else "f32"
        self.dims: Tuple[int, ...] = tuple(raw.dims[i] for i in range(raw.rank))
        self.elements = raw.elements
        self.bytes_in = raw.bytes_in
        self.bytes_out = raw.bytes_out
        self.chunk_count = raw.chunk_count
        self.compression_ratio = raw.compression_ratio
        self.salvage_used = bool(raw.salvage_used)
        self.chunks_expected = raw.chunks_expected
        self.chunks_recovered = raw.chunks_recovered

    def __repr__(self) -> str:
        return (
            f"Info(container={self.container.name}, dtype={self.dtype}, "
            f"dims={self.dims}, elements={self.elements}, "
            f"bytes_in={self.bytes_in}, bytes_out={self.bytes_out})"
        )


def _find_library() -> str:
    env = os.environ.get("SZSEC_LIBRARY")
    if env:
        return env
    build = os.environ.get("SZSEC_BUILD_DIR")
    if build:
        cand = os.path.join(build, "src", "capi", "libszsec.so")
        if os.path.exists(cand):
            return cand
    found = ctypes.util.find_library("szsec")
    if found:
        return found
    return "libszsec.so.1"


_lib = None


def _load() -> ctypes.CDLL:
    global _lib
    if _lib is not None:
        return _lib
    path = _find_library()
    try:
        lib = ctypes.CDLL(path)
    except OSError as e:
        raise OSError(
            f"cannot load libszsec ({path}); set SZSEC_LIBRARY to the "
            f"built shared library: {e}"
        ) from e

    lib.szsec_options_init.argtypes = [ctypes.POINTER(_Options)]
    lib.szsec_options_init.restype = None
    lib.szsec_version.restype = ctypes.c_char_p
    lib.szsec_abi_version.restype = ctypes.c_int
    lib.szsec_error_name.argtypes = [ctypes.c_int]
    lib.szsec_error_name.restype = ctypes.c_char_p
    lib.szsec_last_error_message.restype = ctypes.c_char_p
    lib.szsec_encoder_new.argtypes = [
        ctypes.POINTER(_Options),
        ctypes.c_char_p,
        ctypes.c_size_t,
        ctypes.POINTER(ctypes.c_void_p),
    ]
    lib.szsec_decoder_new.argtypes = lib.szsec_encoder_new.argtypes
    lib.szsec_feed.argtypes = [
        ctypes.c_void_p,
        ctypes.c_char_p,
        ctypes.c_size_t,
        ctypes.POINTER(ctypes.c_size_t),
    ]
    lib.szsec_pull.argtypes = [
        ctypes.c_void_p,
        ctypes.POINTER(ctypes.c_uint8),
        ctypes.c_size_t,
        ctypes.POINTER(ctypes.c_size_t),
    ]
    lib.szsec_finish.argtypes = [ctypes.c_void_p]
    lib.szsec_status.argtypes = [ctypes.c_void_p]
    lib.szsec_ctx_free.argtypes = [ctypes.c_void_p]
    lib.szsec_ctx_free.restype = None
    lib.szsec_ctx_info.argtypes = [ctypes.c_void_p, ctypes.POINTER(_Info)]
    lib.szsec_compress.argtypes = [
        ctypes.POINTER(_Options),
        ctypes.c_char_p,
        ctypes.c_size_t,
        ctypes.c_char_p,
        ctypes.c_size_t,
        ctypes.POINTER(ctypes.POINTER(ctypes.c_uint8)),
        ctypes.POINTER(ctypes.c_size_t),
    ]
    lib.szsec_decompress.argtypes = [
        ctypes.POINTER(_Options),
        ctypes.c_char_p,
        ctypes.c_size_t,
        ctypes.c_char_p,
        ctypes.c_size_t,
        ctypes.POINTER(ctypes.POINTER(ctypes.c_uint8)),
        ctypes.POINTER(ctypes.c_size_t),
        ctypes.POINTER(_Info),
    ]
    lib.szsec_verify.argtypes = [
        ctypes.c_char_p,
        ctypes.c_size_t,
        ctypes.c_char_p,
        ctypes.c_size_t,
    ]
    lib.szsec_buffer_free.argtypes = [ctypes.POINTER(ctypes.c_uint8)]
    lib.szsec_buffer_free.restype = None

    abi = lib.szsec_abi_version()
    if abi != ABI_VERSION:
        raise OSError(
            f"libszsec speaks ABI {abi}; this wrapper expects {ABI_VERSION}"
        )
    _lib = lib
    return lib


def library_version() -> str:
    """Release version string of the loaded libszsec (e.g. "1.0.0")."""
    return _load().szsec_version().decode()


def _raise(code: int) -> None:
    lib = _load()
    message = (lib.szsec_last_error_message() or b"").decode()
    name = (lib.szsec_error_name(code) or b"").decode()
    cls = _ERROR_CLASSES.get(code, SzsecError)
    raise cls(f"{name}: {message}", code)


def _check(code: int) -> int:
    if code < 0:
        _raise(code)
    return code


def _make_options(
    *,
    scheme: Scheme = Scheme.NONE,
    cipher: Cipher = Cipher.AES128,
    mode: Mode = Mode.CBC,
    authenticate: bool = False,
    float64: bool = False,
    container: Container = Container.V2_SINGLE,
    seek_table: bool = True,
    dims: Optional[Sequence[int]] = None,
    error_bound: float = 1e-4,
    quant_bins: int = 0,
    block_side: int = 0,
    chunks: int = 0,
    threads: int = 1,
    salvage: bool = False,
    fill: Fill = Fill.ZEROS,
    drbg_seed: Optional[int] = None,
) -> _Options:
    o = _Options()
    _load().szsec_options_init(ctypes.byref(o))
    o.scheme = int(scheme)
    o.cipher_kind = int(cipher)
    o.cipher_mode = int(mode)
    o.authenticate = 1 if authenticate else 0
    o.dtype = 1 if float64 else 0
    o.container = int(container)
    o.seek_table = 1 if seek_table else 0
    if dims is not None:
        if not 1 <= len(dims) <= MAX_RANK:
            raise InvalidError(f"dims needs 1..{MAX_RANK} axes, got {len(dims)}")
        o.rank = len(dims)
        for i, d in enumerate(dims):
            o.dims[i] = d
    o.abs_error_bound = error_bound
    if quant_bins:
        o.quant_bins = quant_bins
    if block_side:
        o.block_side = block_side
    o.chunks = chunks
    o.threads = threads
    o.salvage = 1 if salvage else 0
    o.salvage_fill = int(fill)
    if drbg_seed is not None:
        o.has_drbg_seed = 1
        o.drbg_seed = drbg_seed
    return o


class _Context:
    """Shared plumbing for Encoder/Decoder over an opaque szsec_ctx."""

    _PULL_CHUNK = 1 << 16

    def __init__(self, ctx: ctypes.c_void_p):
        self._ctx = ctx
        self._lib = _load()

    def __del__(self):
        self.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def close(self) -> None:
        """Releases the context (idempotent); an unfinished run aborts."""
        ctx, self._ctx = self._ctx, None
        if ctx:
            self._lib.szsec_ctx_free(ctx)

    def _require(self) -> ctypes.c_void_p:
        if not self._ctx:
            raise StateError("context is closed")
        return self._ctx

    def _drain(self) -> Iterator[bytes]:
        ctx = self._require()
        buf = (ctypes.c_uint8 * self._PULL_CHUNK)()
        produced = ctypes.c_size_t()
        while True:
            st = _check(
                self._lib.szsec_pull(
                    ctx, buf, len(buf), ctypes.byref(produced)
                )
            )
            if produced.value:
                yield bytes(bytearray(buf[: produced.value]))
            if st != HAVE_OUTPUT:
                return

    def feed(self, data: bytes) -> Iterator[bytes]:
        """Feeds ``data``, yielding any output it unlocks."""
        ctx = self._require()
        view = bytes(data)
        offset = 0
        consumed = ctypes.c_size_t()
        while offset < len(view):
            st = _check(
                self._lib.szsec_feed(
                    ctx,
                    view[offset:],
                    len(view) - offset,
                    ctypes.byref(consumed),
                )
            )
            offset += consumed.value
            if st == HAVE_OUTPUT:
                yield from self._drain()

    def finish(self) -> Iterator[bytes]:
        """Declares end of input and yields all remaining output."""
        _check(self._lib.szsec_finish(self._require()))
        yield from self._drain()

    def info(self) -> Info:
        """Outcome of the finished run (StateError before completion)."""
        raw = _Info()
        raw.struct_size = ctypes.sizeof(raw)
        _check(self._lib.szsec_ctx_info(self._require(), ctypes.byref(raw)))
        return Info(raw)


class Encoder(_Context):
    """Streaming compressor: feed raw element bytes, pull archive bytes."""

    def __init__(self, *, dims: Sequence[int], key: bytes = b"", **kwargs):
        opts = _make_options(dims=dims, **kwargs)
        lib = _load()
        ctx = ctypes.c_void_p()
        _check(
            lib.szsec_encoder_new(
                ctypes.byref(opts), key, len(key), ctypes.byref(ctx)
            )
        )
        super().__init__(ctx)


class Decoder(_Context):
    """Streaming decompressor: feed archive bytes, pull element bytes."""

    def __init__(self, *, key: bytes = b"", threads: int = 1,
                 salvage: bool = False, fill: Fill = Fill.ZEROS):
        opts = _make_options(threads=threads, salvage=salvage, fill=fill)
        lib = _load()
        ctx = ctypes.c_void_p()
        _check(
            lib.szsec_decoder_new(
                ctypes.byref(opts), key, len(key), ctypes.byref(ctx)
            )
        )
        super().__init__(ctx)


def _take_buffer(ptr, length: ctypes.c_size_t) -> bytes:
    try:
        return ctypes.string_at(ptr, length.value)
    finally:
        _load().szsec_buffer_free(ptr)


def compress(data: bytes, *, dims: Sequence[int], key: bytes = b"",
             **kwargs) -> bytes:
    """One-shot: raw little-endian element bytes -> container bytes."""
    opts = _make_options(dims=dims, **kwargs)
    lib = _load()
    out = ctypes.POINTER(ctypes.c_uint8)()
    out_len = ctypes.c_size_t()
    _check(
        lib.szsec_compress(
            ctypes.byref(opts), key, len(key), bytes(data), len(data),
            ctypes.byref(out), ctypes.byref(out_len),
        )
    )
    return _take_buffer(out, out_len)


def decompress(container: bytes, *, key: bytes = b"", threads: int = 1,
               salvage: bool = False, fill: Fill = Fill.ZEROS,
               want_info: bool = False):
    """One-shot: container bytes -> raw element bytes (or (bytes, Info))."""
    opts = _make_options(threads=threads, salvage=salvage, fill=fill)
    lib = _load()
    out = ctypes.POINTER(ctypes.c_uint8)()
    out_len = ctypes.c_size_t()
    raw_info = _Info()
    raw_info.struct_size = ctypes.sizeof(raw_info)
    _check(
        lib.szsec_decompress(
            ctypes.byref(opts), key, len(key), bytes(container),
            len(container), ctypes.byref(out), ctypes.byref(out_len),
            ctypes.byref(raw_info),
        )
    )
    data = _take_buffer(out, out_len)
    if want_info:
        return data, Info(raw_info)
    return data


def verify(container: bytes, *, key: bytes = b"") -> None:
    """Integrity scan without decoding; raises CorruptError on damage."""
    _check(
        _load().szsec_verify(bytes(container), len(container), key, len(key))
    )
