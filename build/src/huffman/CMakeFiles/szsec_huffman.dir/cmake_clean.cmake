file(REMOVE_RECURSE
  "CMakeFiles/szsec_huffman.dir/huffman.cpp.o"
  "CMakeFiles/szsec_huffman.dir/huffman.cpp.o.d"
  "libszsec_huffman.a"
  "libszsec_huffman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szsec_huffman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
