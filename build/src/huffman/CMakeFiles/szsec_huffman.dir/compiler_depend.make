# Empty compiler generated dependencies file for szsec_huffman.
# This may be replaced when dependencies are built.
