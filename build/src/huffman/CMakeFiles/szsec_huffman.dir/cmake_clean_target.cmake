file(REMOVE_RECURSE
  "libszsec_huffman.a"
)
