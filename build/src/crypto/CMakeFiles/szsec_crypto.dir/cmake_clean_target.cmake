file(REMOVE_RECURSE
  "libszsec_crypto.a"
)
