# Empty compiler generated dependencies file for szsec_crypto.
# This may be replaced when dependencies are built.
