file(REMOVE_RECURSE
  "CMakeFiles/szsec_crypto.dir/aes.cpp.o"
  "CMakeFiles/szsec_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/szsec_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/szsec_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/szsec_crypto.dir/cipher.cpp.o"
  "CMakeFiles/szsec_crypto.dir/cipher.cpp.o.d"
  "CMakeFiles/szsec_crypto.dir/des.cpp.o"
  "CMakeFiles/szsec_crypto.dir/des.cpp.o.d"
  "CMakeFiles/szsec_crypto.dir/drbg.cpp.o"
  "CMakeFiles/szsec_crypto.dir/drbg.cpp.o.d"
  "CMakeFiles/szsec_crypto.dir/modes.cpp.o"
  "CMakeFiles/szsec_crypto.dir/modes.cpp.o.d"
  "CMakeFiles/szsec_crypto.dir/sha256.cpp.o"
  "CMakeFiles/szsec_crypto.dir/sha256.cpp.o.d"
  "libszsec_crypto.a"
  "libszsec_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szsec_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
