# Empty dependencies file for szsec_archive.
# This may be replaced when dependencies are built.
