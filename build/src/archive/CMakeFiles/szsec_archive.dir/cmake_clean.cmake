file(REMOVE_RECURSE
  "CMakeFiles/szsec_archive.dir/chunked.cpp.o"
  "CMakeFiles/szsec_archive.dir/chunked.cpp.o.d"
  "libszsec_archive.a"
  "libszsec_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szsec_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
