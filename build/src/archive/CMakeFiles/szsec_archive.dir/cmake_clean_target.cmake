file(REMOVE_RECURSE
  "libszsec_archive.a"
)
