# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("huffman")
subdirs("zlite")
subdirs("sz")
subdirs("core")
subdirs("parallel")
subdirs("archive")
subdirs("baselines")
subdirs("zfpl")
subdirs("nist")
subdirs("data")
