# Empty compiler generated dependencies file for szsec_zlite.
# This may be replaced when dependencies are built.
