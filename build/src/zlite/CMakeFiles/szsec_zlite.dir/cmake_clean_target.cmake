file(REMOVE_RECURSE
  "libszsec_zlite.a"
)
