file(REMOVE_RECURSE
  "CMakeFiles/szsec_zlite.dir/zlite.cpp.o"
  "CMakeFiles/szsec_zlite.dir/zlite.cpp.o.d"
  "libszsec_zlite.a"
  "libszsec_zlite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szsec_zlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
