# CMake generated Testfile for 
# Source directory: /root/repo/src/zlite
# Build directory: /root/repo/build/src/zlite
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
