# Empty dependencies file for szsec_core.
# This may be replaced when dependencies are built.
