file(REMOVE_RECURSE
  "CMakeFiles/szsec_core.dir/secure_compressor.cpp.o"
  "CMakeFiles/szsec_core.dir/secure_compressor.cpp.o.d"
  "libszsec_core.a"
  "libszsec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szsec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
