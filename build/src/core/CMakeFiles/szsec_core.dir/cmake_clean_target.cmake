file(REMOVE_RECURSE
  "libszsec_core.a"
)
