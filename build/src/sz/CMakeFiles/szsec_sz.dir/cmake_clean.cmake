file(REMOVE_RECURSE
  "CMakeFiles/szsec_sz.dir/analysis.cpp.o"
  "CMakeFiles/szsec_sz.dir/analysis.cpp.o.d"
  "CMakeFiles/szsec_sz.dir/pipeline.cpp.o"
  "CMakeFiles/szsec_sz.dir/pipeline.cpp.o.d"
  "libszsec_sz.a"
  "libszsec_sz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szsec_sz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
