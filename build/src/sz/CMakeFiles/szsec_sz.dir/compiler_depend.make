# Empty compiler generated dependencies file for szsec_sz.
# This may be replaced when dependencies are built.
