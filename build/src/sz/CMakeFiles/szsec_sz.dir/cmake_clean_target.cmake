file(REMOVE_RECURSE
  "libszsec_sz.a"
)
