file(REMOVE_RECURSE
  "libszsec_zfpl.a"
)
