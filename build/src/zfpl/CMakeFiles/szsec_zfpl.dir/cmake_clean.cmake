file(REMOVE_RECURSE
  "CMakeFiles/szsec_zfpl.dir/zfpl.cpp.o"
  "CMakeFiles/szsec_zfpl.dir/zfpl.cpp.o.d"
  "libszsec_zfpl.a"
  "libszsec_zfpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szsec_zfpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
