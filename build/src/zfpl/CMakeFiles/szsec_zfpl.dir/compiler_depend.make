# Empty compiler generated dependencies file for szsec_zfpl.
# This may be replaced when dependencies are built.
