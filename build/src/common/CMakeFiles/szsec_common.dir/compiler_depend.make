# Empty compiler generated dependencies file for szsec_common.
# This may be replaced when dependencies are built.
