file(REMOVE_RECURSE
  "libszsec_common.a"
)
