# Empty dependencies file for szsec_common.
# This may be replaced when dependencies are built.
