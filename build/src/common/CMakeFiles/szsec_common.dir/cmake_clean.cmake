file(REMOVE_RECURSE
  "CMakeFiles/szsec_common.dir/crc32.cpp.o"
  "CMakeFiles/szsec_common.dir/crc32.cpp.o.d"
  "CMakeFiles/szsec_common.dir/hex.cpp.o"
  "CMakeFiles/szsec_common.dir/hex.cpp.o.d"
  "CMakeFiles/szsec_common.dir/stats.cpp.o"
  "CMakeFiles/szsec_common.dir/stats.cpp.o.d"
  "libszsec_common.a"
  "libszsec_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szsec_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
