file(REMOVE_RECURSE
  "CMakeFiles/szsec_parallel.dir/slab.cpp.o"
  "CMakeFiles/szsec_parallel.dir/slab.cpp.o.d"
  "CMakeFiles/szsec_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/szsec_parallel.dir/thread_pool.cpp.o.d"
  "libszsec_parallel.a"
  "libszsec_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szsec_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
