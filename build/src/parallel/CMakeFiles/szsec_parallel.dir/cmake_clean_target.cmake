file(REMOVE_RECURSE
  "libszsec_parallel.a"
)
