# Empty dependencies file for szsec_parallel.
# This may be replaced when dependencies are built.
