file(REMOVE_RECURSE
  "CMakeFiles/szsec_baselines.dir/truncate.cpp.o"
  "CMakeFiles/szsec_baselines.dir/truncate.cpp.o.d"
  "libszsec_baselines.a"
  "libszsec_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szsec_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
