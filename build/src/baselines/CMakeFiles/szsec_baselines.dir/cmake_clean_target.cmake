file(REMOVE_RECURSE
  "libszsec_baselines.a"
)
