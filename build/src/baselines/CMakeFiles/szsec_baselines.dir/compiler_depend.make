# Empty compiler generated dependencies file for szsec_baselines.
# This may be replaced when dependencies are built.
