file(REMOVE_RECURSE
  "CMakeFiles/szsec_data.dir/datasets.cpp.o"
  "CMakeFiles/szsec_data.dir/datasets.cpp.o.d"
  "CMakeFiles/szsec_data.dir/fieldgen.cpp.o"
  "CMakeFiles/szsec_data.dir/fieldgen.cpp.o.d"
  "CMakeFiles/szsec_data.dir/io.cpp.o"
  "CMakeFiles/szsec_data.dir/io.cpp.o.d"
  "libszsec_data.a"
  "libszsec_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szsec_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
