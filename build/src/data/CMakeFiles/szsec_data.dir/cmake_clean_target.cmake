file(REMOVE_RECURSE
  "libszsec_data.a"
)
