# Empty dependencies file for szsec_data.
# This may be replaced when dependencies are built.
