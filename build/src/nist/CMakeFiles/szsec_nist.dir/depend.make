# Empty dependencies file for szsec_nist.
# This may be replaced when dependencies are built.
