file(REMOVE_RECURSE
  "CMakeFiles/szsec_nist.dir/sp800_22.cpp.o"
  "CMakeFiles/szsec_nist.dir/sp800_22.cpp.o.d"
  "CMakeFiles/szsec_nist.dir/special_functions.cpp.o"
  "CMakeFiles/szsec_nist.dir/special_functions.cpp.o.d"
  "libszsec_nist.a"
  "libszsec_nist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szsec_nist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
