file(REMOVE_RECURSE
  "libszsec_nist.a"
)
