
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nist/sp800_22.cpp" "src/nist/CMakeFiles/szsec_nist.dir/sp800_22.cpp.o" "gcc" "src/nist/CMakeFiles/szsec_nist.dir/sp800_22.cpp.o.d"
  "/root/repo/src/nist/special_functions.cpp" "src/nist/CMakeFiles/szsec_nist.dir/special_functions.cpp.o" "gcc" "src/nist/CMakeFiles/szsec_nist.dir/special_functions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/szsec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
