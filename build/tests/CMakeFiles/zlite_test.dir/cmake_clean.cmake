file(REMOVE_RECURSE
  "CMakeFiles/zlite_test.dir/zlite_test.cpp.o"
  "CMakeFiles/zlite_test.dir/zlite_test.cpp.o.d"
  "zlite_test"
  "zlite_test.pdb"
  "zlite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zlite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
