file(REMOVE_RECURSE
  "CMakeFiles/cipher_test.dir/cipher_test.cpp.o"
  "CMakeFiles/cipher_test.dir/cipher_test.cpp.o.d"
  "cipher_test"
  "cipher_test.pdb"
  "cipher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cipher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
