# Empty compiler generated dependencies file for cipher_test.
# This may be replaced when dependencies are built.
