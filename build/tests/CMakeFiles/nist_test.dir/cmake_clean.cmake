file(REMOVE_RECURSE
  "CMakeFiles/nist_test.dir/nist_test.cpp.o"
  "CMakeFiles/nist_test.dir/nist_test.cpp.o.d"
  "nist_test"
  "nist_test.pdb"
  "nist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
