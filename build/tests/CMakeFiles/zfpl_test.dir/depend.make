# Empty dependencies file for zfpl_test.
# This may be replaced when dependencies are built.
