file(REMOVE_RECURSE
  "CMakeFiles/zfpl_test.dir/zfpl_test.cpp.o"
  "CMakeFiles/zfpl_test.dir/zfpl_test.cpp.o.d"
  "zfpl_test"
  "zfpl_test.pdb"
  "zfpl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zfpl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
