# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/cipher_test[1]_include.cmake")
include("/root/repo/build/tests/sha256_test[1]_include.cmake")
include("/root/repo/build/tests/huffman_test[1]_include.cmake")
include("/root/repo/build/tests/zlite_test[1]_include.cmake")
include("/root/repo/build/tests/zlib_interop_test[1]_include.cmake")
include("/root/repo/build/tests/sz_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/nist_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/archive_test[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/zfpl_test[1]_include.cmake")
