file(REMOVE_RECURSE
  "CMakeFiles/dataset_profiler.dir/dataset_profiler.cpp.o"
  "CMakeFiles/dataset_profiler.dir/dataset_profiler.cpp.o.d"
  "dataset_profiler"
  "dataset_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
