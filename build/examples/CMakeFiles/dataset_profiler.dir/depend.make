# Empty dependencies file for dataset_profiler.
# This may be replaced when dependencies are built.
