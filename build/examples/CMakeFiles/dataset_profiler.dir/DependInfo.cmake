
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/dataset_profiler.cpp" "examples/CMakeFiles/dataset_profiler.dir/dataset_profiler.cpp.o" "gcc" "examples/CMakeFiles/dataset_profiler.dir/dataset_profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/szsec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/szsec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nist/CMakeFiles/szsec_nist.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/szsec_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/archive/CMakeFiles/szsec_archive.dir/DependInfo.cmake"
  "/root/repo/build/src/sz/CMakeFiles/szsec_sz.dir/DependInfo.cmake"
  "/root/repo/build/src/huffman/CMakeFiles/szsec_huffman.dir/DependInfo.cmake"
  "/root/repo/build/src/zlite/CMakeFiles/szsec_zlite.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/szsec_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/szsec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
