file(REMOVE_RECURSE
  "CMakeFiles/randomness_audit.dir/randomness_audit.cpp.o"
  "CMakeFiles/randomness_audit.dir/randomness_audit.cpp.o.d"
  "randomness_audit"
  "randomness_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomness_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
