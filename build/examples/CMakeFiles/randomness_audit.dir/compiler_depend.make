# Empty compiler generated dependencies file for randomness_audit.
# This may be replaced when dependencies are built.
