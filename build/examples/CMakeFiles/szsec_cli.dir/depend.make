# Empty dependencies file for szsec_cli.
# This may be replaced when dependencies are built.
