file(REMOVE_RECURSE
  "CMakeFiles/szsec_cli.dir/szsec_cli.cpp.o"
  "CMakeFiles/szsec_cli.dir/szsec_cli.cpp.o.d"
  "szsec_cli"
  "szsec_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szsec_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
