# Empty dependencies file for parallel_archive.
# This may be replaced when dependencies are built.
