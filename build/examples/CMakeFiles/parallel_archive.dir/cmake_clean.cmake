file(REMOVE_RECURSE
  "CMakeFiles/parallel_archive.dir/parallel_archive.cpp.o"
  "CMakeFiles/parallel_archive.dir/parallel_archive.cpp.o.d"
  "parallel_archive"
  "parallel_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
