file(REMOVE_RECURSE
  "CMakeFiles/secure_climate_archive.dir/secure_climate_archive.cpp.o"
  "CMakeFiles/secure_climate_archive.dir/secure_climate_archive.cpp.o.d"
  "secure_climate_archive"
  "secure_climate_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_climate_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
