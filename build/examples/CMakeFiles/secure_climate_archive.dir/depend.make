# Empty dependencies file for secure_climate_archive.
# This may be replaced when dependencies are built.
