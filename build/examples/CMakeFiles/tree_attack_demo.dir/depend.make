# Empty dependencies file for tree_attack_demo.
# This may be replaced when dependencies are built.
