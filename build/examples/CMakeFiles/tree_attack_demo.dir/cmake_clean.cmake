file(REMOVE_RECURSE
  "CMakeFiles/tree_attack_demo.dir/tree_attack_demo.cpp.o"
  "CMakeFiles/tree_attack_demo.dir/tree_attack_demo.cpp.o.d"
  "tree_attack_demo"
  "tree_attack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
