file(REMOVE_RECURSE
  "CMakeFiles/salvage_demo.dir/salvage_demo.cpp.o"
  "CMakeFiles/salvage_demo.dir/salvage_demo.cpp.o.d"
  "salvage_demo"
  "salvage_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salvage_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
