# Empty dependencies file for salvage_demo.
# This may be replaced when dependencies are built.
