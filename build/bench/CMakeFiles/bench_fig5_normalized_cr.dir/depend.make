# Empty dependencies file for bench_fig5_normalized_cr.
# This may be replaced when dependencies are built.
