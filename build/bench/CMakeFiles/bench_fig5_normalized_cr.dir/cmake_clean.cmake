file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_normalized_cr.dir/bench_fig5_normalized_cr.cpp.o"
  "CMakeFiles/bench_fig5_normalized_cr.dir/bench_fig5_normalized_cr.cpp.o.d"
  "bench_fig5_normalized_cr"
  "bench_fig5_normalized_cr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_normalized_cr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
