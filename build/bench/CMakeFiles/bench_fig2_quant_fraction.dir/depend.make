# Empty dependencies file for bench_fig2_quant_fraction.
# This may be replaced when dependencies are built.
