# Empty compiler generated dependencies file for bench_fig4_tree_fraction.
# This may be replaced when dependencies are built.
