file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_encr_huffman_overhead.dir/bench_table5_encr_huffman_overhead.cpp.o"
  "CMakeFiles/bench_table5_encr_huffman_overhead.dir/bench_table5_encr_huffman_overhead.cpp.o.d"
  "bench_table5_encr_huffman_overhead"
  "bench_table5_encr_huffman_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_encr_huffman_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
