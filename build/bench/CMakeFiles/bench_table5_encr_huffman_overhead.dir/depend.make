# Empty dependencies file for bench_table5_encr_huffman_overhead.
# This may be replaced when dependencies are built.
