file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_decompression_overhead.dir/bench_ext_decompression_overhead.cpp.o"
  "CMakeFiles/bench_ext_decompression_overhead.dir/bench_ext_decompression_overhead.cpp.o.d"
  "bench_ext_decompression_overhead"
  "bench_ext_decompression_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_decompression_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
