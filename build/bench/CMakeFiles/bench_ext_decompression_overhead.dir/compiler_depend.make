# Empty compiler generated dependencies file for bench_ext_decompression_overhead.
# This may be replaced when dependencies are built.
