# Empty compiler generated dependencies file for bench_table3_cmpr_encr_overhead.
# This may be replaced when dependencies are built.
