file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_zfp.dir/bench_ext_zfp.cpp.o"
  "CMakeFiles/bench_ext_zfp.dir/bench_ext_zfp.cpp.o.d"
  "bench_ext_zfp"
  "bench_ext_zfp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_zfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
