# Empty dependencies file for bench_ext_zfp.
# This may be replaced when dependencies are built.
