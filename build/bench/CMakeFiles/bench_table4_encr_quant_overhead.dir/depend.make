# Empty dependencies file for bench_table4_encr_quant_overhead.
# This may be replaced when dependencies are built.
