# Empty compiler generated dependencies file for bench_ext_bitflip_study.
# This may be replaced when dependencies are built.
