file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_bitflip_study.dir/bench_ext_bitflip_study.cpp.o"
  "CMakeFiles/bench_ext_bitflip_study.dir/bench_ext_bitflip_study.cpp.o.d"
  "bench_ext_bitflip_study"
  "bench_ext_bitflip_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_bitflip_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
