# Empty dependencies file for bench_table6_nist.
# This may be replaced when dependencies are built.
