file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_nist.dir/bench_table6_nist.cpp.o"
  "CMakeFiles/bench_table6_nist.dir/bench_table6_nist.cpp.o.d"
  "bench_table6_nist"
  "bench_table6_nist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_nist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
