file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_zlite.dir/bench_ablation_zlite.cpp.o"
  "CMakeFiles/bench_ablation_zlite.dir/bench_ablation_zlite.cpp.o.d"
  "bench_ablation_zlite"
  "bench_ablation_zlite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_zlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
