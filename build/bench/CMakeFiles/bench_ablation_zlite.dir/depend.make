# Empty dependencies file for bench_ablation_zlite.
# This may be replaced when dependencies are built.
