# Empty compiler generated dependencies file for bench_table2_baseline_cr.
# This may be replaced when dependencies are built.
