file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_baseline_cr.dir/bench_table2_baseline_cr.cpp.o"
  "CMakeFiles/bench_table2_baseline_cr.dir/bench_table2_baseline_cr.cpp.o.d"
  "bench_table2_baseline_cr"
  "bench_table2_baseline_cr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_baseline_cr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
